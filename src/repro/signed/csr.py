"""Indexed CSR backend for signed graphs and batched array-based BFS.

The dict-of-dicts :class:`~repro.signed.graph.SignedGraph` is ideal for
incremental construction and O(1) single-edge queries, but every per-source
algorithm pays Python-interpreter cost per visited edge.  This module provides
the indexed counterpart used on large graphs:

* :class:`CSRSignedGraph` — an immutable snapshot that maps arbitrary hashable
  node ids to dense integers and stores adjacency as three flat arrays
  (``indptr`` offsets, ``indices`` neighbours, ``signs`` labels) — the classic
  compressed-sparse-row layout;
* :func:`signed_bfs_csr` — Algorithm 1 (positive/negative shortest-path
  counting) as a level-synchronous vectorised BFS over the flat arrays;
* :func:`shortest_path_lengths_csr` / :func:`shortest_signed_walk_lengths_csr`
  — array versions of the other two single-source primitives;
* :func:`multi_source_signed_bfs` — convenience wrapper running many sources
  over one shared index; the pairwise statistics implement the same loop with
  a per-source overflow fallback in the SP* relations'
  ``batch_compatibility_degrees``.

Results come back as :class:`CSRSignedBFSResult`, an array-backed object that
answers the same ``length`` / ``counts`` / ``reachable`` queries as
:class:`~repro.signed.paths.SignedBFSResult` and can be converted to it
exactly (:meth:`CSRSignedBFSResult.to_signed_bfs_result`), so callers can
switch backends without changing semantics.  Path counts are held in ``int64``
— exact up to 2**63-1, which covers every graph in this repository; graphs
engineered to have astronomically many shortest paths (e.g. large grids) need
the dict backend's arbitrary-precision integers.

Everything here is deterministic: the dense ids follow the insertion order of
the source graph, and the BFS visits neighbours in adjacency order, so the
outputs are bit-identical to the dict implementations (the equivalence tests
in ``tests/test_csr.py`` enforce this).

The level-synchronous traversal pays a fixed cost of ~20 array operations per
BFS level, so it targets the low-diameter graphs this library is about
(social networks, diameter < 20); on path-like graphs with diameter ~n the
dict BFS is faster and ``backend="dict"`` should be forced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NodeNotFoundError
from repro.signed.graph import Node, Sign, SignedGraph
from repro.signed.paths import INFINITY, SignedBFSResult

#: Sentinel used in length arrays for unreachable nodes.
UNREACHABLE = -1


class CSRSignedGraph:
    """An immutable compressed-sparse-row snapshot of a signed graph.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the neighbours of dense node ``i``
        live in ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        ``int32`` array of neighbour dense ids (both directions of every
        undirected edge are stored, like the adjacency dict).
    signs:
        ``int8`` array parallel to ``indices`` holding the edge labels.
    """

    __slots__ = ("indptr", "indices", "signs", "_nodes", "_index")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        signs: np.ndarray,
        nodes: List[Node],
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.signs = signs
        self._nodes = nodes
        self._index: Dict[Node, int] = {node: i for i, node in enumerate(nodes)}

    # ------------------------------------------------------------------ build

    @classmethod
    def from_signed_graph(cls, graph: SignedGraph) -> "CSRSignedGraph":
        """Snapshot ``graph`` into CSR form (dense ids follow node insertion order)."""
        nodes = graph.nodes()
        index = {node: i for i, node in enumerate(nodes)}
        num_nodes = len(nodes)
        adjacency = graph._adjacency
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        for node, i in index.items():
            indptr[i + 1] = len(adjacency[node])
        np.cumsum(indptr, out=indptr)
        num_entries = int(indptr[-1])
        indices = np.empty(num_entries, dtype=np.int32)
        signs = np.empty(num_entries, dtype=np.int8)
        position = 0
        for node in nodes:
            for neighbor, sign in adjacency[node].items():
                indices[position] = index[neighbor]
                signs[position] = sign
                position += 1
        return cls(indptr, indices, signs, nodes)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Node, Node, Sign]],
        nodes: Optional[Iterable[Node]] = None,
    ) -> "CSRSignedGraph":
        """Build from ``(u, v, sign)`` triples, via an intermediate :class:`SignedGraph`."""
        return cls.from_signed_graph(SignedGraph.from_edges(edges, nodes=nodes))

    # ------------------------------------------------------------------ query

    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self._nodes)

    def number_of_edges(self) -> int:
        """Return ``|E|`` (each undirected edge counted once)."""
        return len(self.indices) // 2

    def nodes(self) -> List[Node]:
        """The original node objects, in dense-id order (a fresh list, like
        :meth:`SignedGraph.nodes`, so callers may mutate it freely)."""
        return list(self._nodes)

    def node_at(self, dense_id: int) -> Node:
        """The original node object for ``dense_id``."""
        return self._nodes[dense_id]

    def index_of(self, node: Node) -> int:
        """The dense id of ``node``; raises :class:`NodeNotFoundError` if absent."""
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return len(self._nodes)

    def degrees(self) -> np.ndarray:
        """Array of node degrees, indexed by dense id."""
        return np.diff(self.indptr)

    def __repr__(self) -> str:
        return (
            f"CSRSignedGraph(nodes={self.number_of_nodes()}, "
            f"edges={self.number_of_edges()})"
        )


@dataclass(eq=False)
class CSRSignedBFSResult:
    """Array-backed output of :func:`signed_bfs_csr` (Algorithm 1).

    ``lengths[i]`` is the BFS distance from the source to dense node ``i``
    (:data:`UNREACHABLE` when there is none); ``positive_counts`` /
    ``negative_counts`` hold the signed shortest-path counts.  The query
    methods accept the original node objects, so the object is a drop-in for
    :class:`~repro.signed.paths.SignedBFSResult` in pairwise code.  Equality
    is identity (``eq=False``): value comparison of array fields is ambiguous;
    convert via :meth:`to_signed_bfs_result` to compare results by value.
    """

    source: Node
    graph: CSRSignedGraph
    lengths_array: np.ndarray
    positive_array: np.ndarray
    negative_array: np.ndarray

    def length(self, node: Node) -> float:
        """Shortest-path length to ``node`` (``inf`` if unreachable)."""
        value = self.lengths_array[self.graph.index_of(node)]
        return INFINITY if value == UNREACHABLE else int(value)

    def counts(self, node: Node) -> Tuple[int, int]:
        """Return ``(positive, negative)`` shortest-path counts for ``node``."""
        dense = self.graph.index_of(node)
        return (int(self.positive_array[dense]), int(self.negative_array[dense]))

    def reachable(self, node: Node) -> bool:
        """True iff ``node`` is reachable from the source."""
        return self.lengths_array[self.graph.index_of(node)] != UNREACHABLE

    def reachable_count(self) -> int:
        """Number of reachable nodes (including the source)."""
        return int((self.lengths_array != UNREACHABLE).sum())

    def compatible_count(self, rule_mask: np.ndarray) -> int:
        """Number of non-source nodes selected by a boolean ``rule_mask``.

        ``rule_mask`` is typically produced by a vectorised pair rule over
        ``positive_array`` / ``negative_array`` (see the SP* relations); the
        source itself and unreachable nodes are excluded, mirroring the
        dict-backend compatible-set construction.
        """
        mask = rule_mask & (self.lengths_array != UNREACHABLE)
        mask[self.graph.index_of(self.source)] = False
        return int(mask.sum())

    def compatible_nodes(self, rule_mask: np.ndarray) -> List[Node]:
        """The non-source node objects selected by ``rule_mask`` (reachable only)."""
        mask = rule_mask & (self.lengths_array != UNREACHABLE)
        mask[self.graph.index_of(self.source)] = False
        nodes = self.graph._nodes
        return [nodes[i] for i in np.flatnonzero(mask)]

    def to_signed_bfs_result(self) -> SignedBFSResult:
        """Convert to the dict-backed :class:`SignedBFSResult`, bit for bit.

        Reachable nodes appear in BFS-discovery-compatible order (by level,
        then dense id); counts and lengths are identical to what
        :func:`~repro.signed.paths.signed_bfs` produces on the same graph.
        """
        nodes = self.graph._nodes
        reachable = np.flatnonzero(self.lengths_array != UNREACHABLE)
        order = reachable[np.argsort(self.lengths_array[reachable], kind="stable")]
        lengths: Dict[Node, int] = {}
        positive: Dict[Node, int] = {}
        negative: Dict[Node, int] = {}
        for dense in order:
            node = nodes[dense]
            lengths[node] = int(self.lengths_array[dense])
            positive[node] = int(self.positive_array[dense])
            negative[node] = int(self.negative_array[dense])
        return SignedBFSResult(
            source=self.source,
            positive_counts=positive,
            negative_counts=negative,
            lengths=lengths,
        )


def _next_frontier(
    new_states: np.ndarray, state_array: np.ndarray, next_depth: int
) -> np.ndarray:
    """Deduplicated frontier for the next BFS level.

    ``new_states`` holds the states discovered this level, possibly with
    duplicates.  For small levels a sort-based ``np.unique`` is cheapest; for
    large levels a linear scan of the state array beats sorting — without the
    scan fallback a low-diameter graph pays O(k log k) on huge levels, and
    without the unique fast path a path-like graph pays O(n · diameter) in
    full-array scans.
    """
    if new_states.size * 16 < state_array.size:
        return np.unique(new_states)
    return np.flatnonzero(state_array == next_depth)


def _concatenated_neighbor_ranges(
    csr: CSRSignedGraph, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Gather the adjacency slices of every frontier node into flat arrays.

    Returns ``(targets, signs, sources, counts)`` where ``sources[k]`` is the
    frontier node whose adjacency produced ``targets[k]`` and ``counts[i]`` is
    the degree of ``frontier[i]`` (so callers can repeat per-frontier data
    without regathering the offsets).  Fully vectorised: the concatenated
    ranges are materialised with the repeat/cumsum offset trick instead of a
    Python loop over frontier nodes.
    """
    starts = csr.indptr[frontier]
    counts = csr.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.astype(np.int8), empty, counts
    shifts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    offsets = np.repeat(starts - shifts, counts) + np.arange(total)
    return csr.indices[offsets], csr.signs[offsets], np.repeat(frontier, counts), counts


def signed_bfs_csr(csr: CSRSignedGraph, source: Node) -> CSRSignedBFSResult:
    """Algorithm 1 on the CSR backend: signed shortest-path counting.

    A level-synchronous BFS: each iteration gathers the concatenated adjacency
    of the whole frontier, discovers the next level, and scatters the signed
    count contributions with ``np.add.at`` (positive edges preserve the counts,
    negative edges swap them).  Work per level is a handful of O(frontier
    edges) array operations, so the full traversal is O(|V| + |E|) with
    constant factors one to two orders of magnitude below the dict BFS.

    Counts are ``int64``.  A per-level guard raises :class:`OverflowError`
    *before* any count can wrap: as long as every count entering a level is at
    most ``(2**63 - 1) / max_degree``, no target's accumulated sum can exceed
    ``int64`` during that level, so the check below (applied after each level)
    catches the overflow while all values are still exact.  Callers that hit
    the guard should fall back to the dict backend's arbitrary-precision
    integers (:func:`repro.signed.paths.signed_bfs`) — the relations do this
    automatically.
    """
    source_id = csr.index_of(source)
    num_nodes = csr.number_of_nodes()
    degrees = csr.degrees()
    max_degree = int(degrees.max()) if num_nodes else 0
    count_guard = (2**63 - 1) // max(1, max_degree)
    lengths = np.full(num_nodes, UNREACHABLE, dtype=np.int32)
    positive = np.zeros(num_nodes, dtype=np.int64)
    negative = np.zeros(num_nodes, dtype=np.int64)
    lengths[source_id] = 0
    positive[source_id] = 1
    frontier = np.array([source_id], dtype=np.int64)
    depth = 0
    while frontier.size:
        targets, edge_signs, origins, _counts = _concatenated_neighbor_ranges(csr, frontier)
        if targets.size == 0:
            break
        target_lengths = lengths[targets]
        # Edges u -> x with L(x) == L(u) + 1 carry shortest-path counts.  At
        # gather time every length is still <= depth or UNREACHABLE (level
        # depth + 1 is assigned just below), so those edges are exactly the
        # ones whose target was undiscovered — including repeat occurrences of
        # the same target within this level, which all contribute counts.
        undiscovered = target_lengths == UNREACHABLE
        lengths[targets[undiscovered]] = depth + 1
        targets = targets[undiscovered]
        if targets.size:
            edge_signs = edge_signs[undiscovered]
            origins = origins[undiscovered]
            positive_edges = edge_signs > 0
            pos_contrib = np.where(positive_edges, positive[origins], negative[origins])
            neg_contrib = np.where(positive_edges, negative[origins], positive[origins])
            np.add.at(positive, targets, pos_contrib)
            np.add.at(negative, targets, neg_contrib)
            if (
                int(positive[targets].max()) > count_guard
                or int(negative[targets].max()) > count_guard
            ):
                raise OverflowError(
                    "signed shortest-path counts exceed the int64 safety bound "
                    f"({count_guard}) at BFS depth {depth + 1}; use the dict "
                    "backend (repro.signed.paths.signed_bfs) for this graph"
                )
        frontier = _next_frontier(targets, lengths, depth + 1)
        depth += 1
    return CSRSignedBFSResult(
        source=source,
        graph=csr,
        lengths_array=lengths,
        positive_array=positive,
        negative_array=negative,
    )


def shortest_path_lengths_csr(csr: CSRSignedGraph, source: Node) -> np.ndarray:
    """Sign-agnostic BFS distances from ``source`` as a dense ``int32`` array.

    Unreachable nodes hold :data:`UNREACHABLE`; wrap with :class:`CSRLengths`
    for a dict-like view keyed by original node objects.
    """
    source_id = csr.index_of(source)
    lengths = np.full(csr.number_of_nodes(), UNREACHABLE, dtype=np.int32)
    lengths[source_id] = 0
    frontier = np.array([source_id], dtype=np.int64)
    depth = 0
    while frontier.size:
        targets, _, _, _ = _concatenated_neighbor_ranges(csr, frontier)
        if targets.size == 0:
            break
        undiscovered = targets[lengths[targets] == UNREACHABLE]
        lengths[undiscovered] = depth + 1
        frontier = _next_frontier(undiscovered, lengths, depth + 1)
        depth += 1
    return lengths


def shortest_signed_walk_lengths_csr(
    csr: CSRSignedGraph, source: Node
) -> Tuple[np.ndarray, np.ndarray]:
    """Shortest positive / negative *walk* lengths on the signed double cover.

    Array version of
    :func:`~repro.signed.paths.shortest_signed_walk_lengths`: each node is
    duplicated into a positive-parity and a negative-parity state, positive
    edges stay within a layer and negative edges cross layers.  Returns two
    dense arrays (positive first) with :data:`UNREACHABLE` where no walk of
    that sign exists.
    """
    source_id = csr.index_of(source)
    num_nodes = csr.number_of_nodes()
    # State i encodes (node, +1); state i + n encodes (node, -1).
    distances = np.full(2 * num_nodes, UNREACHABLE, dtype=np.int32)
    distances[source_id] = 0
    frontier = np.array([source_id], dtype=np.int64)
    depth = 0
    while frontier.size:
        node_part = frontier % num_nodes
        parity_part = frontier // num_nodes  # 0 = positive, 1 = negative
        targets, edge_signs, _origins, counts = _concatenated_neighbor_ranges(
            csr, node_part
        )
        if targets.size == 0:
            break
        origin_parity = np.repeat(parity_part, counts)
        next_parity = np.where(edge_signs > 0, origin_parity, 1 - origin_parity)
        states = targets.astype(np.int64) + next_parity * num_nodes
        undiscovered = states[distances[states] == UNREACHABLE]
        distances[undiscovered] = depth + 1
        frontier = _next_frontier(undiscovered, distances, depth + 1)
        depth += 1
    return distances[:num_nodes].copy(), distances[num_nodes:].copy()


def multi_source_signed_bfs(
    csr: CSRSignedGraph, sources: Sequence[Node]
) -> List[CSRSignedBFSResult]:
    """Run Algorithm 1 from every source over one shared index.

    The CSR arrays and the node-id mapping are built once and reused by every
    source, but each source is still its own vectorised BFS (a true
    shared-frontier batch is a ROADMAP item).  Results are returned in input
    order.
    """
    return [signed_bfs_csr(csr, source) for source in sources]


class CSRLengths:
    """Dict-like read view over a dense length array, keyed by node objects.

    Supports the mapping subset the distance oracle uses (``get``,
    ``__contains__``, ``__getitem__``, ``items``); unreachable nodes behave as
    missing keys.
    """

    __slots__ = ("_graph", "_lengths")

    def __init__(self, graph: CSRSignedGraph, lengths: np.ndarray) -> None:
        self._graph = graph
        self._lengths = lengths

    def get(self, node: Node, default=None):
        """Length to ``node``, or ``default`` when unreachable or unknown."""
        dense = self._graph._index.get(node)
        if dense is None:
            return default
        value = self._lengths[dense]
        return default if value == UNREACHABLE else int(value)

    def __getitem__(self, node: Node) -> int:
        value = self.get(node)
        if value is None:
            raise KeyError(node)
        return value

    def __contains__(self, node: Node) -> bool:
        return self.get(node) is not None

    def __len__(self) -> int:
        return int((self._lengths != UNREACHABLE).sum())

    def __iter__(self) -> Iterator[Node]:
        # Without this, Python's legacy iteration protocol would call
        # __getitem__(0), __getitem__(1), ... and raise KeyError — a trap for
        # callers that iterate the dict the small-graph code path returns.
        nodes = self._graph._nodes
        for dense in np.flatnonzero(self._lengths != UNREACHABLE):
            yield nodes[dense]

    def keys(self) -> Iterator[Node]:
        """Iterate over the reachable nodes (dict-style)."""
        return iter(self)

    def items(self):
        """Iterate over ``(node, length)`` pairs for reachable nodes."""
        nodes = self._graph._nodes
        for dense in np.flatnonzero(self._lengths != UNREACHABLE):
            yield nodes[dense], int(self._lengths[dense])
