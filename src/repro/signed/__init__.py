"""Signed-graph substrate: data structure, I/O, generators, balance, paths, metrics."""

from repro.signed.graph import POSITIVE, NEGATIVE, SignedEdge, SignedGraph
from repro.signed.delta import GraphDelta
from repro.signed.balance import (
    BalanceReport,
    harary_bipartition,
    is_balanced,
    frustration_index_greedy,
    triangle_census,
    path_is_balanced,
    induced_subgraph_is_balanced,
)
from repro.signed.paths import (
    SignedBFSResult,
    signed_bfs,
    count_signed_shortest_paths,
    shortest_path_lengths,
    shortest_signed_walk_lengths,
    all_shortest_paths,
    enumerate_simple_paths,
    shortest_balanced_positive_path,
    BalancedPathSearch,
)
# The CSR backend (repro.signed.csr) requires numpy and is imported lazily via
# __getattr__ below, so `import repro` and the dict backend keep working on
# numpy-free installs.
_CSR_EXPORTS = (
    "CSRSignedBFSResult",
    "CSRSignedGraph",
    "CSRLengths",
    "balanced_heuristic_search_csr",
    "multi_source_signed_bfs",
    "multi_source_shortest_path_lengths_csr",
    "shortest_path_lengths_csr",
    "shortest_signed_walk_lengths_csr",
    "signed_bfs_csr",
)


# The snapshot store (repro.signed.store) is importable without numpy but
# its save/load paths require it; exported lazily alongside the CSR backend.
_STORE_EXPORTS = ("save_snapshot", "load_snapshot", "load_labels", "snapshot_info")

# The distance-label index (repro.signed.labels) requires numpy for every
# build/query path; exported lazily like the CSR backend.
_LABEL_EXPORTS = (
    "LabelIndex",
    "build_label_index",
    "refresh_label_index",
    "labels_equal",
)

# CSR-first ingestion (repro.signed.ingest) and the lazy SignedGraph facade
# (repro.signed.lazy) both sit on numpy; exported lazily like the CSR backend.
_INGEST_EXPORTS = (
    "parse_edge_list_csr",
    "read_edge_arrays",
    "read_edge_tokens",
    "csr_from_edge_arrays",
)
_LAZY_EXPORTS = ("CSRBackedSignedGraph", "as_signed_graph")


def __getattr__(name):
    if name in _CSR_EXPORTS:
        from repro.signed import csr

        return getattr(csr, name)
    if name in _INGEST_EXPORTS:
        from repro.signed import ingest

        return getattr(ingest, name)
    if name in _LAZY_EXPORTS:
        from repro.signed import lazy

        return getattr(lazy, name)
    if name in _STORE_EXPORTS:
        from repro.signed import store

        return getattr(store, name)
    if name in _LABEL_EXPORTS:
        from repro.signed import labels

        return getattr(labels, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from repro.signed.components import connected_components, largest_connected_component, is_connected
from repro.signed.metrics import (
    GraphStatistics,
    graph_statistics,
    diameter,
    average_degree,
    negative_edge_fraction,
    degree_histogram,
    sign_distribution,
)
from repro.signed.convert import to_networkx, from_networkx, unsigned_copy, positive_subgraph
from repro.signed.clustering import (
    PartitionQuality,
    greedy_balance_partition,
    partition_agreement,
    partition_quality,
    propagate_balance_partition,
)
from repro.signed.prediction import (
    AlwaysPositivePredictor,
    CompatibilityPredictor,
    PredictionReport,
    ShortestPathSignPredictor,
    SignPredictor,
    TriangleVotePredictor,
    compare_predictors,
    evaluate_predictor,
)

__all__ = [
    "PartitionQuality",
    "greedy_balance_partition",
    "partition_agreement",
    "partition_quality",
    "propagate_balance_partition",
    "SignPredictor",
    "AlwaysPositivePredictor",
    "TriangleVotePredictor",
    "ShortestPathSignPredictor",
    "CompatibilityPredictor",
    "PredictionReport",
    "evaluate_predictor",
    "compare_predictors",
    "POSITIVE",
    "NEGATIVE",
    "SignedEdge",
    "SignedGraph",
    "GraphDelta",
    "BalanceReport",
    "harary_bipartition",
    "is_balanced",
    "frustration_index_greedy",
    "triangle_census",
    "path_is_balanced",
    "induced_subgraph_is_balanced",
    "SignedBFSResult",
    "signed_bfs",
    "count_signed_shortest_paths",
    "shortest_path_lengths",
    "shortest_signed_walk_lengths",
    "all_shortest_paths",
    "enumerate_simple_paths",
    "shortest_balanced_positive_path",
    "BalancedPathSearch",
    "CSRSignedGraph",
    "CSRSignedBFSResult",
    "CSRLengths",
    "save_snapshot",
    "load_snapshot",
    "load_labels",
    "snapshot_info",
    "LabelIndex",
    "build_label_index",
    "refresh_label_index",
    "labels_equal",
    "balanced_heuristic_search_csr",
    "signed_bfs_csr",
    "shortest_path_lengths_csr",
    "shortest_signed_walk_lengths_csr",
    "multi_source_signed_bfs",
    "multi_source_shortest_path_lengths_csr",
    "connected_components",
    "largest_connected_component",
    "is_connected",
    "GraphStatistics",
    "graph_statistics",
    "diameter",
    "average_degree",
    "negative_edge_fraction",
    "degree_histogram",
    "sign_distribution",
    "to_networkx",
    "from_networkx",
    "unsigned_copy",
    "positive_subgraph",
]
