"""Vectorised CSR-first edge-list ingestion.

:func:`repro.signed.io.parse_edge_list` builds a Python dict graph one line at
a time — at a million nodes that is gigabytes of dict overhead and minutes of
interpreter looping before the first CSR kernel can run.  This module parses
the same files straight into :class:`~repro.signed.csr.CSRSignedGraph` planes:
the file is read in ~64MB blocks, split and converted with
``np.frombuffer``/``np.fromstring``, and deduplication, undirected
symmetrisation and largest-component restriction all happen on numpy arrays.

Bit-identity with the dict parser is a hard contract, relied on by the loader
cache and the Zipf skill model (both key off node order):

* node order is first-appearance order in the accepted edge stream,
* each CSR row lists neighbours in edge first-appearance order, with the two
  directions of one undirected edge adjacent in time (``u→v`` then ``v→u``),
* duplicate pairs follow the ``keep_first`` / ``negative_wins`` / ``error``
  policies of :func:`~repro.signed.io.parse_edge_list` exactly.

Files whose node labels are not plain integers (string or quoted ids, bare
``+``/``-`` sign tokens, trailing extra columns) take a second, token-mode
scan: whitespace-delimited byte tokens are mapped to dense ids with an
incremental ``np.unique`` vocabulary and fed through the same dedupe/plane
assembly, so they stay vectorised end to end.  Anything neither scanner can
prove it parses identically to the dict parser — short lines, invalid sign
tokens, non-ASCII bytes, labels whose ``int()`` coercion is ambiguous
(``01`` vs ``1``) — makes :func:`parse_edge_list_csr` return ``None`` so the
caller can fall back to the dict parser (which also produces the proper
line-numbered errors).  The fallback is about fidelity, not robustness:
well-formed edge lists never take it.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import DatasetError
from repro.signed.csr import CSRSignedGraph
from repro.signed.graph import Node

PathLike = Union[str, Path]

#: Text block size for the chunked reader (the last partial line of each block
#: is carried into the next one, so lines never straddle a parse call).  The
#: scanner's per-chunk masks and index arrays cost ~10x the chunk size, so the
#: block is kept small to bound peak RSS; throughput is flat from ~1MB up.
CHUNK_BYTES = 4 * 1024 * 1024

_POLICIES = ("keep_first", "negative_wins", "error")

# Byte-level classification tables (applied after ``,``/tab/CR → space).
_SPACE_TRANS = bytes.maketrans(b",\t\r", b"   ")
_SPACE, _NEWLINE, _HASH, _PERCENT = 32, 10, 35, 37
_PLUS, _MINUS, _ZERO = 43, 45, 48

_ALLOWED = np.zeros(256, dtype=bool)
_ALLOWED[48:58] = True  # digits
_ALLOWED[[_SPACE, _NEWLINE, _PLUS, _MINUS]] = True

_DIGIT = np.zeros(256, dtype=bool)
_DIGIT[48:58] = True

_TOKEN_BREAK = np.zeros(256, dtype=bool)
_TOKEN_BREAK[[_SPACE, _NEWLINE]] = True

#: int64 holds 18 fully-general decimal digits; longer runs could overflow
#: silently inside ``np.fromstring``, so they force the dict fallback.
_MAX_DIGIT_RUN = 18


class _VectorParseUnsupported(Exception):
    """Internal signal: this input needs the reference dict parser."""


# --------------------------------------------------------------------- scanner


def _data_line_spans(arr: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Spans of the data lines (non-empty, non-comment) of one block.

    ``arr`` is the space-translated byte view of a newline-terminated block.
    Returns ``(arr, starts, ends)`` where comment lines have been blanked to
    spaces (in a copy, when any exist) so downstream scans can ignore them,
    and ``starts``/``ends`` bound exactly the lines that carry data.
    """
    size = arr.size
    newline_pos = np.flatnonzero(arr == _NEWLINE)
    starts = np.concatenate(([0], newline_pos + 1))
    ends = np.append(newline_pos, size)
    del newline_pos
    real = starts < ends  # drops empty lines and a trailing-newline phantom
    starts, ends = starts[real], ends[real]
    del real
    if starts.size == 0:
        return arr, starts, ends

    content = (arr != _SPACE) & (arr != _NEWLINE)
    # Per-line non-space counts via reduceat — no per-byte index array.
    has_content = np.add.reduceat(content, starts) > 0
    comment = np.zeros(starts.size, dtype=bool)
    if ((arr == _HASH) | (arr == _PERCENT)).any():
        # First non-whitespace byte of each line (only materialised when a
        # comment marker exists at all — the per-byte index array is large).
        nonws_pos = np.flatnonzero(content)
        lookup = np.searchsorted(nonws_pos, starts)
        first_at = nonws_pos[np.minimum(lookup, nonws_pos.size - 1)]
        first_byte = arr[first_at]
        comment = (
            (lookup < nonws_pos.size)
            & (first_at < ends)
            & ((first_byte == _HASH) | (first_byte == _PERCENT))
        )
        del nonws_pos, lookup, first_at, first_byte
        if comment.any():
            # Blank comment lines in place so the numeric scan skips them.
            arr = arr.copy()
            delta = np.zeros(size + 1, dtype=np.int32)
            np.add.at(delta, starts[comment], 1)
            np.subtract.at(delta, ends[comment], 1)
            covered = np.cumsum(delta[:-1]) > 0
            del delta
            arr[covered] = _SPACE
            del covered
    keep = has_content & ~comment
    del content, has_content, comment
    return arr, starts[keep], ends[keep]


def _scan_chunk(chunk: bytes) -> Tuple[np.ndarray, int]:
    """Parse one newline-terminated block into numbers.

    Returns ``(values, data_lines)`` where ``values`` is a flat int64 array of
    every number on the block's data lines and ``data_lines`` counts the
    non-empty, non-comment lines.  Raises :class:`_VectorParseUnsupported`
    whenever byte patterns show the block might parse differently under the
    reference parser.
    """
    arr = np.frombuffer(chunk.translate(_SPACE_TRANS), dtype=np.uint8)
    arr, starts, ends = _data_line_spans(arr)
    size = arr.size
    data_lines = starts.size
    del starts, ends
    if data_lines == 0:
        return np.empty(0, dtype=np.int64), 0

    if not _ALLOWED[arr].all():
        raise _VectorParseUnsupported("non-numeric bytes")
    # Sign characters are only unambiguous at token starts ("1-2" would split
    # into two numbers where the dict parser sees one string token).
    sign_pos = np.flatnonzero((arr == _PLUS) | (arr == _MINUS))
    if sign_pos.size:
        prev = arr[sign_pos - 1]
        bad = (sign_pos > 0) & ~_TOKEN_BREAK[prev]
        if bad.any():
            raise _VectorParseUnsupported("sign character inside a token")
        del prev, bad
    del sign_pos
    # Leading zeros: int("01") == 1 for a *node* but "01" is an invalid *sign*
    # token to the dict parser, so any 0-led multi-digit token falls back.
    zero_pos = np.flatnonzero(arr == _ZERO)
    if zero_pos.size:
        at_start = np.ones(zero_pos.size, dtype=bool)
        prior = zero_pos > 0
        prev = arr[zero_pos[prior] - 1]
        at_start[prior] = _TOKEN_BREAK[prev] | (prev == _PLUS) | (prev == _MINUS)
        followed = np.zeros(zero_pos.size, dtype=bool)
        inner = zero_pos < size - 1
        followed[inner] = _DIGIT[arr[zero_pos[inner] + 1]]
        if (at_start & followed).any():
            raise _VectorParseUnsupported("leading zero in a token")
        del at_start, prior, prev, followed, inner
    del zero_pos
    # Digit runs longer than int64 can hold: a windowed AND by doubling —
    # ``run[i]`` is True when ``width`` consecutive bytes from ``i`` are all
    # digits — keeps every temporary the size of one boolean mask.
    run = _DIGIT[arr]
    width = 1
    while width <= _MAX_DIGIT_RUN:
        step = min(width, _MAX_DIGIT_RUN + 1 - width)
        if run.size <= step:
            run = run[:0]
            break
        run = run[: run.size - step] & run[step:]
        width += step
    if run.size and run.any():
        raise _VectorParseUnsupported("integer token too long")
    del run

    values = np.fromstring(arr.tobytes(), dtype=np.int64, sep=" ")
    if values.size != 3 * data_lines:
        raise _VectorParseUnsupported("line/token count mismatch")
    return values, data_lines


# ---------------------------------------------------------------- token scanner


#: Token-mode cap on label length: the fixed-width ``S``-dtype extraction
#: allocates ``3 * lines * width`` bytes per chunk, so pathological labels
#: force the dict fallback instead of a quadratic blow-up.
_MAX_TOKEN_BYTES = 64

#: Bijective decimal spellings — ``int(token)`` round-trips to exactly this
#: string, so canonicalising them can never merge two distinct byte tokens.
_CANONICAL_INT = re.compile(rb"0|-?[1-9][0-9]*")

#: The wider set ``int()`` might accept (signs, leading zeros, ``1_0``-style
#: underscore groups).  Non-canonical members parse to ints under the dict
#: parser but not bijectively, so they force the fallback.
_INT_LIKE = re.compile(rb"[+-]?[0-9_]*[0-9][0-9_]*")


def _scan_chunk_tokens(chunk: bytes) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tokenise one newline-terminated block into ``(u, v, sign)`` columns.

    The generalisation of :func:`_scan_chunk` for files whose node labels are
    not plain integers: every data line is split into whitespace-delimited
    byte tokens (after the same ``,``/tab/CR translation), the first two
    become ``S``-dtype label columns and the third the ±1 sign column.  Lines
    keep the dict parser's semantics exactly — at least three tokens, extra
    tokens ignored.  Raises :class:`_VectorParseUnsupported` for anything the
    dict parser would reject (short lines, bad sign tokens) or that byte-level
    tokens cannot represent faithfully (control bytes, non-ASCII).
    """
    arr = np.frombuffer(chunk.translate(_SPACE_TRANS), dtype=np.uint8)
    empty = np.empty(0, dtype="S1")
    if arr.size == 0:
        return empty, empty, np.empty(0, dtype=np.int64)
    # The dict parser reads text and splits on *any* whitespace; remaining
    # control bytes (vertical tab, form feed, NUL...) or non-ASCII bytes would
    # tokenise differently here, so they are not claimed.
    if (((arr < _SPACE) & (arr != _NEWLINE)) | (arr >= 128)).any():
        raise _VectorParseUnsupported("control or non-ascii byte")
    arr, starts, ends = _data_line_spans(arr)
    num_lines = starts.size
    if num_lines == 0:
        return empty, empty, np.empty(0, dtype=np.int64)

    content = (arr != _SPACE) & (arr != _NEWLINE)
    boundary = np.empty_like(content)
    boundary[0] = content[0]
    np.greater(content[1:], content[:-1], out=boundary[1:])
    token_start = np.flatnonzero(boundary)
    boundary[-1] = content[-1]
    np.greater(content[:-1], content[1:], out=boundary[:-1])
    token_end = np.flatnonzero(boundary) + 1
    del content, boundary
    lengths = token_end - token_start
    if lengths.size and int(lengths.max()) > _MAX_TOKEN_BYTES:
        raise _VectorParseUnsupported("token too long")

    # Comments are blanked and blank lines carry no tokens, so every token
    # falls inside a data-line span.
    line_of = np.searchsorted(starts, token_start, side="right") - 1
    token_counts = np.bincount(line_of, minlength=num_lines)
    del line_of
    if (token_counts < 3).any():
        raise _VectorParseUnsupported("short line")
    line_first = np.zeros(num_lines, dtype=np.int64)
    np.cumsum(token_counts[:-1], out=line_first[1:])
    del token_counts
    # Column-major selection: all sources, then targets, then signs — the
    # dict parser's parts[0] / parts[1] / parts[2] with extras ignored.
    select = np.concatenate([line_first, line_first + 1, line_first + 2])
    del line_first
    sel_start = token_start[select]
    sel_len = lengths[select]
    del token_start, token_end, lengths, select
    width = int(sel_len.max())
    span = np.arange(width, dtype=np.int64)
    valid = span[None, :] < sel_len[:, None]
    matrix = np.zeros((sel_start.size, width), dtype=np.uint8)
    matrix[valid] = arr[(sel_start[:, None] + span[None, :])[valid]]
    tokens = matrix.view(f"S{width}").ravel()
    del matrix, valid, span, sel_start, sel_len

    u_tokens = tokens[:num_lines]
    v_tokens = tokens[num_lines : 2 * num_lines]
    sign_tokens = tokens[2 * num_lines :]
    positive = (sign_tokens == b"1") | (sign_tokens == b"+1") | (sign_tokens == b"+")
    negative = (sign_tokens == b"-1") | (sign_tokens == b"-")
    if not (positive | negative).all():
        raise _VectorParseUnsupported("invalid sign token")
    signs = np.where(positive, 1, -1).astype(np.int64)
    return u_tokens.copy(), v_tokens.copy(), signs


class _TokenVocabulary:
    """Incremental byte-token → dense-id assignment across chunks.

    Ids are stable (a token keeps the id of its first appearance in *some*
    chunk) while lookups run on a sorted array — chunk token columns map to
    ids with one ``np.unique`` + two ``searchsorted`` calls, no Python dict.
    The id order is arbitrary; first-appearance *node* order is recovered
    downstream by :func:`dedupe_undirected` exactly as for integer inputs.
    """

    def __init__(self) -> None:
        self._sorted = np.empty(0, dtype="S1")
        self._sorted_ids = np.empty(0, dtype=np.int64)
        self.tokens: List[bytes] = []  # indexed by id

    def assign(self, column: np.ndarray) -> np.ndarray:
        """Map one ``S``-dtype token column to int64 ids, growing the vocab."""
        width = max(self._sorted.dtype.itemsize, column.dtype.itemsize, 1)
        kind = f"S{width}"
        vocab = self._sorted.astype(kind, copy=False)
        column = column.astype(kind, copy=False)
        distinct = np.unique(column)
        if vocab.size:
            at = np.minimum(np.searchsorted(vocab, distinct), vocab.size - 1)
            fresh = distinct[vocab[at] != distinct]
        else:
            fresh = distinct
        if fresh.size:
            fresh_ids = len(self.tokens) + np.arange(fresh.size, dtype=np.int64)
            self.tokens.extend(fresh.tolist())
            merged = np.concatenate([vocab, fresh])
            merged_ids = np.concatenate([self._sorted_ids, fresh_ids])
            order = np.argsort(merged)
            self._sorted = merged[order]
            self._sorted_ids = merged_ids[order]
            vocab = self._sorted
        return self._sorted_ids[np.searchsorted(vocab, column)]

    def node_labels(self) -> List[Node]:
        """Python node objects per id, with the dict parser's int coercion.

        Canonical decimal spellings become ints (``int(token)`` is a bijection
        on them, so no two ids can collapse onto one label); other int-like
        spellings (``01``, ``+5``, ``1_0``) *would* coerce under the dict
        parser but not bijectively — they raise and force the fallback.
        """
        labels: List[Node] = []
        for token in self.tokens:
            if _CANONICAL_INT.fullmatch(token):
                labels.append(int(token))
            elif _INT_LIKE.fullmatch(token):
                raise _VectorParseUnsupported("non-canonical integer label")
            else:
                labels.append(token.decode("ascii"))
        return labels


def read_edge_arrays(
    path: PathLike, chunk_bytes: int = CHUNK_BYTES
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Read ``u v sign`` columns of an edge-list file as int64 arrays.

    Returns ``None`` when the file uses syntax the vectorised scanner cannot
    prove equivalent to :func:`~repro.signed.io.parse_edge_list` (the caller
    should re-parse with the dict parser, which also raises the precise,
    line-numbered errors for genuinely malformed input).  Raises
    :class:`DatasetError` when the file is missing.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"edge-list file not found: {file_path}")
    # Accumulated per column (not as one flat values array) so the final
    # concatenation never holds more than one column's worth of copies.
    pieces: Tuple[List[np.ndarray], ...] = ([], [], [])
    try:
        with file_path.open("rb") as handle:
            tail = b""
            while True:
                block = handle.read(chunk_bytes)
                if not block:
                    if tail:
                        _split_columns(_scan_chunk(tail)[0], pieces)
                    break
                data = tail + block
                cut = data.rfind(b"\n")
                if cut < 0:
                    tail = data
                    continue
                _split_columns(_scan_chunk(data[: cut + 1])[0], pieces)
                tail = data[cut + 1 :]
    except _VectorParseUnsupported:
        return None
    columns = []
    for column_pieces in pieces:
        if column_pieces:
            columns.append(np.concatenate(column_pieces))
            column_pieces.clear()
        else:
            columns.append(np.empty(0, dtype=np.int64))
    return columns[0], columns[1], columns[2]


def read_edge_tokens(
    path: PathLike, chunk_bytes: int = CHUNK_BYTES
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, List[Node]]]:
    """Read an edge-list file with arbitrary (string) node labels.

    The token-mode companion of :func:`read_edge_arrays`: node tokens are
    assigned dense int64 ids via a bytes-token ``np.unique`` pass, so the
    returned ``(u, v, sign, labels)`` plugs straight into
    :func:`csr_from_edge_arrays` with ``node_labels=labels``.  Returns
    ``None`` when only the dict parser can reproduce the reference result —
    genuinely malformed lines (short lines, invalid sign tokens, for which it
    raises the proper line-numbered errors) or labels whose ``int()`` coercion
    is not bijective (``01`` vs ``1``).
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"edge-list file not found: {file_path}")
    vocabulary = _TokenVocabulary()
    pieces: Tuple[List[np.ndarray], ...] = ([], [], [])

    def _consume(chunk: bytes) -> None:
        u_tokens, v_tokens, signs = _scan_chunk_tokens(chunk)
        if signs.size == 0:
            return
        pieces[0].append(vocabulary.assign(u_tokens))
        pieces[1].append(vocabulary.assign(v_tokens))
        pieces[2].append(signs)

    try:
        with file_path.open("rb") as handle:
            tail = b""
            while True:
                block = handle.read(chunk_bytes)
                if not block:
                    if tail:
                        _consume(tail)
                    break
                data = tail + block
                cut = data.rfind(b"\n")
                if cut < 0:
                    tail = data
                    continue
                _consume(data[: cut + 1])
                tail = data[cut + 1 :]
        labels = vocabulary.node_labels()
    except _VectorParseUnsupported:
        return None
    empty = np.empty(0, dtype=np.int64)
    return (
        np.concatenate(pieces[0]) if pieces[0] else empty,
        np.concatenate(pieces[1]) if pieces[1] else empty.copy(),
        np.concatenate(pieces[2]) if pieces[2] else empty.copy(),
        labels,
    )


def _split_columns(values: np.ndarray, pieces: Tuple[List[np.ndarray], ...]) -> None:
    """Append one chunk's flat ``u v s`` values to the per-column piece lists."""
    if values.size == 0:
        return
    triples = values.reshape(-1, 3)
    for column, column_pieces in enumerate(pieces):
        column_pieces.append(np.ascontiguousarray(triples[:, column]))


# -------------------------------------------------------------- graph assembly


def dedupe_undirected(
    u: np.ndarray,
    v: np.ndarray,
    s: np.ndarray,
    directed_to_undirected: str = "keep_first",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Drop self-loops and reconcile duplicate/reciprocal pairs.

    Mirrors the dict parser's streaming semantics on dense inputs: edges come
    back in first-appearance order, oriented as first seen, and conflicting
    signs follow ``directed_to_undirected``.  Returns ``(nodes, eu, ev, es)``
    where ``nodes`` lists the distinct endpoint values in first-appearance
    order and ``eu``/``ev`` are dense indices into it.

    Raises :class:`_VectorParseUnsupported` for conflicts under the ``error``
    policy — the caller re-parses with the dict parser to get the reference
    line-numbered :class:`DatasetError`.
    """
    keep = u != v
    if not keep.all():
        u, v, s = u[keep], v[keep], s[keep]
    if u.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    if np.abs(s).min() != 1 or np.abs(s).max() != 1:
        raise _VectorParseUnsupported("sign outside {+1, -1}")
    s = s.astype(np.int8, copy=False)
    # Node labels usually fit int32; shrinking them halves the sort/unique
    # temporaries below (the dense ids and values are unchanged).
    int32_info = np.iinfo(np.int32)
    if (
        u.dtype == np.int64
        and int32_info.min <= min(int(u.min()), int(v.min()))
        and max(int(u.max()), int(v.max())) <= int32_info.max
    ):
        u = u.astype(np.int32)
        v = v.astype(np.int32)

    # Node order = first appearance in the stream; within one edge the source
    # precedes the target, exactly like add_edge(u, v).  Dense ids fit int32
    # (they index arrays that already live in memory), which halves the
    # footprint of everything downstream of the label-space arrays.
    interleaved = np.empty(2 * u.size, dtype=u.dtype)
    interleaved[0::2] = u
    interleaved[1::2] = v
    distinct, first_seen = np.unique(interleaved, return_index=True)
    del interleaved
    order = np.argsort(first_seen)
    nodes = distinct[order]
    rank = np.empty(order.size, dtype=np.int32)
    rank[order] = np.arange(order.size, dtype=np.int32)
    du = rank[np.searchsorted(distinct, u)]
    dv = rank[np.searchsorted(distinct, v)]
    del distinct, first_seen, order, rank

    n = nodes.size
    key = np.minimum(du, dv).astype(np.int64) * n
    key += np.maximum(du, dv)
    _, first_idx, inverse = np.unique(key, return_index=True, return_inverse=True)
    del key
    if directed_to_undirected == "keep_first":
        group_sign = s[first_idx].astype(np.int8)
    else:
        group_sign = np.ones(first_idx.size, dtype=np.int8)
        np.minimum.at(group_sign, inverse, s)  # any -1 in the group wins
        if directed_to_undirected == "error":
            group_max = np.full(first_idx.size, -1, dtype=np.int8)
            np.maximum.at(group_max, inverse, s)
            if (group_sign != group_max).any():
                raise _VectorParseUnsupported("conflicting signs")
    edge_order = np.argsort(first_idx)
    return (
        nodes,
        du[first_idx][edge_order],
        dv[first_idx][edge_order],
        group_sign[edge_order],
    )


def build_csr_planes(
    num_nodes: int, eu: np.ndarray, ev: np.ndarray, es: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR planes from dense undirected edges, in dict-identical row order.

    The dict graph records edge ``k`` as two insertions — ``u→v`` then
    ``v→u`` — so interleaving both directions and stable-sorting by source
    reproduces every adjacency row in insertion order.
    """
    total = 2 * eu.size
    src = np.empty(total, dtype=np.int32)
    dst = np.empty(total, dtype=np.int32)
    both = np.empty(total, dtype=np.int8)
    src[0::2] = eu
    src[1::2] = ev
    dst[0::2] = ev
    dst[1::2] = eu
    both[0::2] = es
    both[1::2] = es
    perm = np.argsort(src, kind="stable")
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=num_nodes), out=indptr[1:])
    return indptr, np.ascontiguousarray(dst[perm]), np.ascontiguousarray(both[perm])


def component_labels(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Per-node component labels (the minimum dense id in each component).

    Min-label propagation with pointer jumping — a few passes over the edge
    arrays instead of a Python BFS per component.
    """
    n = indptr.size - 1
    labels = np.arange(n, dtype=np.int64)
    if indices.size == 0 or n == 0:
        return labels
    degrees = np.diff(indptr)
    nonzero = degrees > 0
    row_starts = indptr[:-1][nonzero]
    while True:
        neighbour_min = np.minimum.reduceat(labels[indices], row_starts)
        new = labels.copy()
        new[nonzero] = np.minimum(labels[nonzero], neighbour_min)
        new = np.minimum(new, new[new])
        if np.array_equal(new, labels):
            return labels
        labels = new


def largest_component_members(
    labels: np.ndarray, nodes: Sequence[Node]
) -> np.ndarray:
    """Dense ids (ascending) of the largest component's members.

    Ties follow :func:`repro.signed.components.connected_components`: among
    equal-sized components the one whose members have the smallest
    ``min(repr(node))`` wins.
    """
    sizes = np.bincount(labels)
    roots = np.flatnonzero(sizes == sizes.max())
    if roots.size > 1:
        best = min(
            (int(r) for r in roots),
            key=lambda r: min(repr(nodes[i]) for i in np.flatnonzero(labels == r)),
        )
    else:
        best = int(roots[0])
    return np.flatnonzero(labels == best)


def restrict_to_largest_component(csr: CSRSignedGraph) -> CSRSignedGraph:
    """Restrict to the largest connected component, preserving row order.

    Components are closed under adjacency, so each surviving row is copied
    verbatim (neighbours re-labelled to the compacted dense ids); member order
    follows the parent graph's node order — the same contract as the dict
    path's :func:`~repro.signed.components.largest_connected_component`.
    """
    labels = component_labels(csr.indptr, csr.indices)
    keep = largest_component_members(labels, csr._nodes)
    if keep.size == labels.size:
        return csr
    degrees = np.diff(csr.indptr)[keep]
    new_indptr = np.zeros(keep.size + 1, dtype=np.int64)
    np.cumsum(degrees, out=new_indptr[1:])
    offsets = np.repeat(csr.indptr[:-1][keep] - new_indptr[:-1], degrees)
    entry_sel = offsets + np.arange(int(new_indptr[-1]), dtype=np.int64)
    old_to_new = np.full(labels.size, -1, dtype=np.int64)
    old_to_new[keep] = np.arange(keep.size)
    node_list = csr._nodes
    return CSRSignedGraph(
        new_indptr,
        old_to_new[csr.indices[entry_sel]].astype(np.int32),
        np.ascontiguousarray(csr.signs[entry_sel]),
        [node_list[i] for i in keep.tolist()],
    )


def csr_from_edge_arrays(
    u: np.ndarray,
    v: np.ndarray,
    s: np.ndarray,
    directed_to_undirected: str = "keep_first",
    node_labels: Optional[Sequence[Node]] = None,
) -> Optional[CSRSignedGraph]:
    """Assemble a :class:`CSRSignedGraph` from raw parallel edge columns.

    ``node_labels`` optionally maps the dense values in ``u``/``v`` to node
    objects (used by the synthetic generator, whose nodes are already
    ``0..n-1``).  Returns ``None`` when the input needs the dict parser (sign
    values outside ±1, or conflicts under the ``error`` policy).
    """
    return _assemble([u, v, s], directed_to_undirected, node_labels)


def _assemble(
    columns: List[np.ndarray],
    directed_to_undirected: str,
    node_labels: Optional[Sequence[Node]] = None,
) -> Optional[CSRSignedGraph]:
    """Dedupe + plane assembly, consuming ``columns`` (the list is cleared so
    the raw label-space arrays are freed before the planes are built — at 10M
    edges they are hundreds of MB)."""
    u, v, s = columns
    columns.clear()
    # Downcast here (not just inside dedupe) so the int64 originals are freed
    # before the sort-heavy dedupe runs — a callee can't release arrays its
    # caller still references.
    if u.size and s.size:
        if -128 <= int(s.min()) and int(s.max()) <= 127:
            s = s.astype(np.int8)
        int32_info = np.iinfo(np.int32)
        if (
            u.dtype == np.int64
            and int32_info.min <= min(int(u.min()), int(v.min()))
            and max(int(u.max()), int(v.max())) <= int32_info.max
        ):
            u = u.astype(np.int32)
            v = v.astype(np.int32)
    try:
        nodes, eu, ev, es = dedupe_undirected(u, v, s, directed_to_undirected)
    except _VectorParseUnsupported:
        return None
    del u, v, s  # drop the raw label-space columns before building the planes
    if node_labels is not None:
        node_list = [node_labels[i] for i in nodes.tolist()]
    else:
        node_list = nodes.tolist()
    indptr, indices, signs = build_csr_planes(nodes.size, eu, ev, es)
    return CSRSignedGraph(indptr, indices, signs, node_list)


def parse_edge_list_csr(
    path: PathLike,
    directed_to_undirected: str = "keep_first",
    restrict_to_lcc: bool = False,
    chunk_bytes: int = CHUNK_BYTES,
) -> Optional[CSRSignedGraph]:
    """Parse an edge-list file straight into a :class:`CSRSignedGraph`.

    Bit-identical to ``parse_edge_list`` + ``from_signed_graph`` (+ the
    row-preserving largest-component restriction) on every input it accepts;
    returns ``None`` when the file needs the dict parser.  See the module
    docstring for the exact fallback conditions.
    """
    if directed_to_undirected not in _POLICIES:
        raise ValueError(
            "directed_to_undirected must be 'keep_first', 'negative_wins' or "
            f"'error', got {directed_to_undirected!r}"
        )
    arrays = read_edge_arrays(path, chunk_bytes=chunk_bytes)
    if arrays is not None:
        columns = list(arrays)
        del arrays
        csr = _assemble(columns, directed_to_undirected)
    else:
        # Token mode: the numeric scanner declined (string labels, bare sign
        # characters, extra columns...), so re-scan assigning byte-token ids.
        # A second decline means the input is genuinely malformed (or int-
        # coerced ambiguously) and the dict parser owns the error messages.
        tokenised = read_edge_tokens(path, chunk_bytes=chunk_bytes)
        if tokenised is None:
            return None
        u, v, s, labels = tokenised
        del tokenised
        csr = _assemble([u, v, s], directed_to_undirected, node_labels=labels)
        del u, v, s
    if csr is None:
        return None
    if restrict_to_lcc and csr.number_of_nodes() > 0:
        csr = restrict_to_largest_component(csr)
    return csr
