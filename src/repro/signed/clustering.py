"""Clustering of signed graphs based on (weak) structural balance.

The paper's conclusions list "exploiting compatibility for other tasks, such
as link prediction or clustering" as future work; this module provides the
clustering side.  A signed graph is *weakly balanced* (Davis, 1967) iff its
nodes can be split into k camps with positive edges inside camps and negative
edges across camps.  Real networks are only approximately balanced, so the
practical task is correlation-clustering style: find a partition minimising
the number of *frustrated* edges (positive across camps + negative within).

Two algorithms are provided:

* :func:`greedy_balance_partition` — local-search on node moves, with random
  restarts; works for any fixed number of camps and is the work-horse used by
  the experiments and examples.
* :func:`propagate_balance_partition` — a two-camp partition obtained from the
  Harary two-colouring of a maximum-weight spanning structure (BFS tree),
  which is exact on balanced graphs and a good seed for the local search.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.signed.graph import NEGATIVE, POSITIVE, Node, SignedGraph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class PartitionQuality:
    """Quality measures of a signed-graph partition."""

    num_clusters: int
    frustrated_edges: int
    total_edges: int
    positive_cut: int
    negative_within: int

    @property
    def frustration_ratio(self) -> float:
        """Frustrated edges as a fraction of all edges (0.0 for an empty graph)."""
        if self.total_edges == 0:
            return 0.0
        return self.frustrated_edges / self.total_edges

    @property
    def agreement_ratio(self) -> float:
        """1 - frustration ratio: the fraction of edges the partition explains."""
        return 1.0 - self.frustration_ratio


def partition_quality(graph: SignedGraph, partition: Dict[Node, int]) -> PartitionQuality:
    """Evaluate a node -> cluster assignment against weak structural balance."""
    missing = [node for node in graph.nodes() if node not in partition]
    if missing:
        raise ValueError(f"partition is missing {len(missing)} node(s), e.g. {missing[0]!r}")
    positive_cut = 0
    negative_within = 0
    for u, v, sign in graph.edge_triples():
        same = partition[u] == partition[v]
        if sign == POSITIVE and not same:
            positive_cut += 1
        elif sign == NEGATIVE and same:
            negative_within += 1
    clusters = len(set(partition[node] for node in graph.nodes())) if graph.number_of_nodes() else 0
    return PartitionQuality(
        num_clusters=clusters,
        frustrated_edges=positive_cut + negative_within,
        total_edges=graph.number_of_edges(),
        positive_cut=positive_cut,
        negative_within=negative_within,
    )


def propagate_balance_partition(graph: SignedGraph) -> Dict[Node, int]:
    """Two-camp partition from a BFS two-colouring that ignores conflicting edges.

    Every node is assigned the camp dictated by the first tree edge reaching it
    ("friends same camp, foes opposite camp"); edges contradicting the
    assignment are simply left frustrated.  On a balanced graph this recovers
    an exact two-camp split; on noisy graphs it is a cheap, deterministic seed.
    """
    camp: Dict[Node, int] = {}
    for start in graph.nodes():
        if start in camp:
            continue
        camp[start] = 0
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor, sign in graph.signed_neighbors(node):
                if neighbor in camp:
                    continue
                camp[neighbor] = camp[node] if sign == POSITIVE else 1 - camp[node]
                queue.append(neighbor)
    return camp


def greedy_balance_partition(
    graph: SignedGraph,
    num_clusters: int = 2,
    restarts: int = 3,
    max_sweeps: int = 30,
    seed: RandomState = None,
    initial: Optional[Dict[Node, int]] = None,
) -> Tuple[Dict[Node, int], PartitionQuality]:
    """Local-search partition of a signed graph into ``num_clusters`` camps.

    Starting from a random assignment (or ``initial`` on the first restart),
    nodes are repeatedly moved to the cluster that minimises their frustrated
    incident edges until a sweep makes no move; the best of ``restarts``
    restarts is returned.

    Returns ``(partition, quality)``.
    """
    require_positive(num_clusters, "num_clusters")
    require_positive(restarts, "restarts")
    require_positive(max_sweeps, "max_sweeps")
    rng = ensure_rng(seed)
    nodes = graph.nodes()
    if not nodes:
        return {}, partition_quality(graph, {})

    best_partition: Dict[Node, int] = {}
    best_frustration: Optional[int] = None
    for restart in range(restarts):
        if restart == 0 and initial is not None:
            partition = {node: initial.get(node, 0) % num_clusters for node in nodes}
        else:
            partition = {node: rng.randrange(num_clusters) for node in nodes}
        for _ in range(max_sweeps):
            moved = False
            order = list(nodes)
            rng.shuffle(order)
            for node in order:
                best_cluster = _best_cluster_for(graph, partition, node, num_clusters)
                if best_cluster != partition[node]:
                    partition[node] = best_cluster
                    moved = True
            if not moved:
                break
        frustration = partition_quality(graph, partition).frustrated_edges
        if best_frustration is None or frustration < best_frustration:
            best_frustration = frustration
            best_partition = dict(partition)
    return best_partition, partition_quality(graph, best_partition)


def _best_cluster_for(
    graph: SignedGraph, partition: Dict[Node, int], node: Node, num_clusters: int
) -> int:
    """Cluster assignment of ``node`` minimising its frustrated incident edges."""
    # cost(c) = (# positive neighbours outside c) + (# negative neighbours inside c)
    positive_inside = [0] * num_clusters
    negative_inside = [0] * num_clusters
    total_positive = 0
    for neighbor, sign in graph.signed_neighbors(node):
        cluster = partition[neighbor]
        if sign == POSITIVE:
            positive_inside[cluster] += 1
            total_positive += 1
        else:
            negative_inside[cluster] += 1
    best_cluster = partition[node]
    best_cost: Optional[int] = None
    for cluster in range(num_clusters):
        cost = (total_positive - positive_inside[cluster]) + negative_inside[cluster]
        if best_cost is None or cost < best_cost or (cost == best_cost and cluster == partition[node]):
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_cluster = cluster
    return best_cluster


def partition_agreement(first: Dict[Node, int], second: Dict[Node, int]) -> float:
    """Pairwise agreement between two partitions (Rand-index style, in [0, 1]).

    The fraction of node pairs on which the two partitions agree about
    "same cluster" vs "different cluster".  Used to compare a recovered
    partition against planted factions.
    """
    nodes = sorted(set(first) & set(second), key=repr)
    if len(nodes) < 2:
        return 1.0
    agree = 0
    total = 0
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            total += 1
            if (first[u] == first[v]) == (second[u] == second[v]):
                agree += 1
    return agree / total
