"""The snapshot store: mmap-persistent CSR planes on disk.

One on-disk format for "a CSR snapshot", spoken by every layer that used to
have its own: :meth:`CSRSignedGraph.save` / :meth:`~CSRSignedGraph.load`
persist and map snapshots directly, the dataset loaders cache their
parse-once results as store files, and the pool executor's ``snapshot_store``
mode publishes snapshots as files that workers ``numpy.memmap`` read-only
instead of attaching shared memory.

The layout follows the result arena's plane discipline
(:mod:`repro.exec.arena`): a fixed-size header, then 8-byte-aligned planes so
every mapped view is a properly aligned ndarray::

    offset 0    magic    b"RPROSNAP"                       8 bytes
           8    header   6 little-endian int64 words       48 bytes
                         version, node-table kind,
                         num_nodes, num_entries,
                         generation, node-table nbytes
          56    indptr   int64[num_nodes + 1]              8-aligned
           .    indices  int32[num_entries]                8-aligned
           .    signs    int8[num_entries]                 8-aligned
           .    node table                                 8-aligned

Version 2 files may append an **optional label section** carrying a
distance-label index (:mod:`repro.signed.labels`) so a warmed index survives
cold start with the same mmap-speed attach the CSR planes get::

           .    magic    b"RPROLBL1"                       8-aligned
           .    header   6 little-endian int64 words
                         mode (0 exact / 1 landmark),
                         num_hubs, num_label_entries,
                         label generation, 2 reserved
           .    exact:    label_indptr int64[n + 1], label_hubs int32[E],
                          label_dists uint16[E], hub_order int32[num_hubs]
           .    landmark: landmark_ids int32[num_hubs],
                          landmark_rows int32[num_hubs * n]

The section is presence-by-size: a file ending right after the node table has
no labels, and version-1 files (which never carry one) load unchanged.
:func:`load_snapshot` ignores the section entirely; :func:`load_labels`
attaches it.

The node table is the one part of a snapshot that cannot be mapped: node ids
are arbitrary hashable Python objects, so they are pickled.  Graphs whose
nodes are exactly ``0..n-1`` (every worker-side attach, most synthetic
graphs) use the ``range`` kind instead — zero bytes on disk, rebuilt as
``list(range(n))`` on load — so the common case pays no pickling at all.

Writes are crash-safe: the planes go to a ``.tmp`` sibling first and
``os.replace`` promotes it atomically, so a reader never maps a half-written
file.  Every live temp path is tracked in a module ledger that
:func:`repro.exec.pool.shutdown_pools` sweeps (same discipline as the shm
segment ledger), so a worker crash mid-publish cannot strand temp files in
the store directory.

Loading with ``mmap=True`` returns :class:`numpy.memmap` views — cold start
is the cost of mapping, not of parsing, and concurrent readers of the same
file share one page-cache copy.  ``mmap=False`` reads the planes into
ordinary arrays (use it when the file is about to be deleted or rewritten).
numpy is required for either direction and its absence raises the library's
standard descriptive :class:`ImportError`.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
import struct
import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.utils.optional import require_numpy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.signed.csr import CSRSignedGraph

#: First 8 bytes of every store file.
MAGIC = b"RPROSNAP"

#: Bump when the header or plane layout changes incompatibly.  Version 2
#: added the optional trailing label section; the base layout is unchanged,
#: so both versions are read (see :data:`_COMPAT_VERSIONS`).
VERSION = 2

#: Versions this library reads.  Version-1 files are byte-identical to
#: version-2 files without a label section.
_COMPAT_VERSIONS = (1, 2)

#: Node-table kinds: dense int nodes need no table at all.
NODE_TABLE_RANGE = 0
NODE_TABLE_PICKLE = 1

#: ``magic + struct`` of the fixed header (6 little-endian int64 words).
_HEADER = struct.Struct("<8s6q")

#: Magic + header of the optional label section (same shape as the file
#: header: 8-byte magic, 6 little-endian int64 words).
LABEL_MAGIC = b"RPROLBL1"
_LABEL_HEADER = struct.Struct("<8s6q")

#: Label-section ``mode`` codes (the wire form of ``LabelIndex.mode``).
_LABEL_MODE_CODES = {"exact": 0, "landmark": 1}
_LABEL_MODE_NAMES = {code: name for name, code in _LABEL_MODE_CODES.items()}

#: ``(plane, dtype, itemsize)`` in file order; itemsizes are spelled out so
#: the layout (and :func:`snapshot_info`) computes without importing numpy.
_PLANE_DTYPES = (("indptr", "<i8", 8), ("indices", "<i4", 4), ("signs", "|i1", 1))


def _align(offset: int) -> int:
    return (offset + 7) & ~7


def _plane_layout(
    num_nodes: int, num_entries: int, node_table_nbytes: int
) -> Tuple[Dict[str, Tuple[str, int, int]], int]:
    """``{plane: (dtype, count, byte offset)}`` plus the total file size.

    Deterministic in the header fields alone, so writer and reader recompute
    it independently — the file carries no offset table (same discipline as
    :func:`repro.exec.arena._plane_layout`).
    """
    counts = {
        "indptr": num_nodes + 1,
        "indices": num_entries,
        "signs": num_entries,
    }
    layout: Dict[str, Tuple[str, int, int]] = {}
    offset = _align(_HEADER.size)
    for name, dtype, itemsize in _PLANE_DTYPES:
        layout[name] = (dtype, counts[name], offset)
        offset = _align(offset + itemsize * counts[name])
    layout["node_table"] = ("|u1", node_table_nbytes, offset)
    return layout, offset + node_table_nbytes


def _label_plane_dtypes(
    mode_code: int, num_nodes: int, num_hubs: int, num_label_entries: int
):
    """``(plane, dtype, itemsize, count)`` of the label section, in file order."""
    if mode_code == _LABEL_MODE_CODES["exact"]:
        return (
            ("label_indptr", "<i8", 8, num_nodes + 1),
            ("label_hubs", "<i4", 4, num_label_entries),
            ("label_dists", "<u2", 2, num_label_entries),
            ("hub_order", "<i4", 4, num_hubs),
        )
    return (
        ("landmark_ids", "<i4", 4, num_hubs),
        ("landmark_rows", "<i4", 4, num_label_entries),
    )


def _label_plane_layout(
    mode_code: int, num_nodes: int, num_hubs: int, num_label_entries: int, base: int
) -> Tuple[Dict[str, Tuple[str, int, int]], int]:
    """``{plane: (dtype, count, byte offset)}`` of a label section starting at
    ``base`` (the aligned offset just past the node table), plus the file's
    total size including it."""
    layout: Dict[str, Tuple[str, int, int]] = {}
    offset = _align(base + _LABEL_HEADER.size)
    end = offset
    for name, dtype, itemsize, count in _label_plane_dtypes(
        mode_code, num_nodes, num_hubs, num_label_entries
    ):
        layout[name] = (dtype, count, offset)
        end = offset + itemsize * count
        offset = _align(end)
    return layout, end


# ------------------------------------------------------------------ temp ledger

#: Live ``.tmp`` paths of in-flight writes.  :func:`flush_temp_files` (called
#: from ``repro.exec.pool.shutdown_pools``) unlinks whatever is still here —
#: after a crash between temp-write and ``os.replace``, that is the orphan.
_TEMP_LEDGER: Dict[str, None] = {}
_TEMP_LOCK = threading.Lock()
_TEMP_COUNTER = itertools.count()


def _temp_path(path: str) -> str:
    """A unique ``.tmp`` sibling of ``path`` (same directory, same filesystem,
    so the final ``os.replace`` is atomic)."""
    return f"{path}.{os.getpid()}.{next(_TEMP_COUNTER)}.tmp"


def flush_temp_files() -> None:
    """Unlink every still-registered temp file (crash-recovery sweep)."""
    with _TEMP_LOCK:
        paths = list(_TEMP_LEDGER)
        _TEMP_LEDGER.clear()
    for path in paths:
        try:
            os.unlink(path)
        except OSError:
            pass


# ------------------------------------------------------------------ write side


def _node_table_bytes(nodes: List) -> Tuple[int, bytes]:
    """``(kind, payload)`` for the node table — empty for dense int nodes."""
    num_nodes = len(nodes)
    if all(
        type(node) is int and node == position for position, node in enumerate(nodes)
    ):
        return NODE_TABLE_RANGE, b""
    return NODE_TABLE_PICKLE, pickle.dumps(nodes, protocol=pickle.HIGHEST_PROTOCOL)


def save_snapshot(csr: "CSRSignedGraph", path: str, labels=None) -> str:
    """Persist ``csr`` to ``path`` in the store format; returns ``path``.

    Atomic: the bytes land in a temp sibling that ``os.replace`` promotes, so
    a concurrent (or later) :func:`load_snapshot` of ``path`` sees either the
    old complete file or the new complete file, never a torn write.

    ``labels`` optionally appends a distance-label index
    (:class:`~repro.signed.labels.LabelIndex`) as the trailing label section;
    it must cover the same nodes and generation as ``csr`` (the two are
    loaded back as one coherent snapshot by :func:`load_snapshot` +
    :func:`load_labels`).
    """
    require_numpy("the snapshot store")
    import numpy as np

    indptr = np.ascontiguousarray(csr.indptr, dtype="<i8")
    indices = np.ascontiguousarray(csr.indices, dtype="<i4")
    signs = np.ascontiguousarray(csr.signs, dtype="|i1")
    num_nodes = csr.number_of_nodes()
    num_entries = int(indices.size)
    if indptr.size != num_nodes + 1:
        raise ValueError(
            f"corrupt snapshot: indptr has {indptr.size} entries for "
            f"{num_nodes} nodes"
        )
    if labels is not None:
        if labels.num_nodes != num_nodes:
            raise ValueError(
                f"label index covers {labels.num_nodes} nodes; the snapshot "
                f"has {num_nodes}"
            )
        if labels.generation != csr.generation:
            raise ValueError(
                f"label index generation {labels.generation} does not match "
                f"snapshot generation {csr.generation} (rebuild or refresh "
                "the index before persisting)"
            )
    kind, table = _node_table_bytes(csr._nodes)
    layout, total = _plane_layout(num_nodes, num_entries, len(table))
    header = _HEADER.pack(
        MAGIC, VERSION, kind, num_nodes, num_entries, csr.generation, len(table)
    )
    temp = _temp_path(path)
    with _TEMP_LOCK:
        _TEMP_LEDGER[temp] = None
    try:
        with open(temp, "wb") as handle:
            handle.write(header)
            for name, array in (
                ("indptr", indptr),
                ("indices", indices),
                ("signs", signs),
            ):
                _dtype, _count, offset = layout[name]
                handle.write(b"\0" * (offset - handle.tell()))
                handle.write(array.tobytes())
            _dtype, _count, offset = layout["node_table"]
            handle.write(b"\0" * (offset - handle.tell()))
            handle.write(table)
            assert handle.tell() == total
            if labels is not None:
                _write_label_section(handle, labels, num_nodes, total)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    finally:
        with _TEMP_LOCK:
            _TEMP_LEDGER.pop(temp, None)
    return path


def _write_label_section(handle, labels, num_nodes: int, base: int) -> None:
    """Append the label section at ``base`` (the end of the base layout)."""
    import numpy as np

    mode_code = _LABEL_MODE_CODES[labels.mode]
    planes = dict(labels.planes())
    num_label_entries = labels.num_entries
    section_start = _align(base)
    layout, section_total = _label_plane_layout(
        mode_code, num_nodes, labels.num_hubs, num_label_entries, section_start
    )
    handle.write(b"\0" * (section_start - handle.tell()))
    handle.write(
        _LABEL_HEADER.pack(
            LABEL_MAGIC,
            mode_code,
            labels.num_hubs,
            num_label_entries,
            labels.generation,
            0,
            0,
        )
    )
    for name, dtype, _itemsize, _count in _label_plane_dtypes(
        mode_code, num_nodes, labels.num_hubs, num_label_entries
    ):
        _plane_dtype, _plane_count, offset = layout[name]
        handle.write(b"\0" * (offset - handle.tell()))
        handle.write(np.ascontiguousarray(planes[name], dtype=dtype).tobytes())
    assert handle.tell() == section_total


# ------------------------------------------------------------------- read side


def _read_header(handle: io.BufferedReader, path: str) -> Tuple[int, ...]:
    raw = handle.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise ValueError(f"{path!r} is not a snapshot store file (truncated header)")
    magic, version, kind, num_nodes, num_entries, generation, table_nbytes = (
        _HEADER.unpack(raw)
    )
    if magic != MAGIC:
        raise ValueError(f"{path!r} is not a snapshot store file (bad magic)")
    if version not in _COMPAT_VERSIONS:
        raise ValueError(
            f"{path!r} is store format version {version}; this library reads "
            f"versions {_COMPAT_VERSIONS}"
        )
    if kind not in (NODE_TABLE_RANGE, NODE_TABLE_PICKLE):
        raise ValueError(f"{path!r} has unknown node-table kind {kind}")
    if num_nodes < 0 or num_entries < 0 or table_nbytes < 0:
        raise ValueError(f"{path!r} has a corrupt header (negative plane size)")
    return version, kind, num_nodes, num_entries, generation, table_nbytes


def load_snapshot(
    path: str, mmap: bool = True, node_table: bool = True
) -> "CSRSignedGraph":
    """Load a store file back into a :class:`CSRSignedGraph`.

    With ``mmap=True`` (the default) the three planes are read-only
    :class:`numpy.memmap` views — the graph is usable after one page-cache
    map, and identical bytes on disk yield identical arrays.  With
    ``mmap=False`` the planes are copied into ordinary arrays and the file
    can be deleted afterwards.  Either way the result is bit-identical to the
    snapshot that was saved: same dtypes, same values, same node order, same
    ``generation``.

    ``node_table=False`` skips the pickled node table and substitutes the
    dense placeholders (``nodes = range(n)``, empty index) — the worker-side
    attach, where only the flat arrays matter and the parent re-keys results.
    """
    require_numpy("the snapshot store")
    import numpy as np

    from repro.signed.csr import CSRSignedGraph

    with open(path, "rb") as handle:
        _version, kind, num_nodes, num_entries, generation, table_nbytes = (
            _read_header(handle, path)
        )
        layout, total = _plane_layout(num_nodes, num_entries, table_nbytes)
        if os.fstat(handle.fileno()).st_size < total:
            raise ValueError(f"{path!r} is truncated (expected {total} bytes)")
        planes = {}
        for name, _dtype, _itemsize in _PLANE_DTYPES:
            dtype, count, offset = layout[name]
            if mmap:
                planes[name] = np.memmap(
                    handle, dtype=dtype, mode="r", offset=offset, shape=(count,)
                )
            else:
                handle.seek(offset)
                planes[name] = np.fromfile(handle, dtype=dtype, count=count)
        if node_table and kind == NODE_TABLE_PICKLE:
            _dtype, count, offset = layout["node_table"]
            handle.seek(offset)
            nodes = pickle.loads(handle.read(count))
            index: Optional[Dict] = None
        else:
            nodes = list(range(num_nodes))
            index = {node: node for node in nodes} if node_table else {}
    return CSRSignedGraph(
        planes["indptr"],
        planes["indices"],
        planes["signs"],
        nodes,
        index=index,
        generation=generation,
    )


def _read_label_header(handle, path: str, version: int, base: int, size: int):
    """The label-section header fields, or ``None`` when the file has none.

    Raises :class:`ValueError` when trailing bytes exist but are not a valid
    label section (same diagnostics discipline as the base header).
    """
    if version < 2 or size <= base:
        return None
    section_start = _align(base)
    if size < section_start + _LABEL_HEADER.size:
        raise ValueError(
            f"{path!r} has trailing bytes that are not a label section"
        )
    handle.seek(section_start)
    raw = handle.read(_LABEL_HEADER.size)
    magic, mode_code, num_hubs, num_label_entries, generation, _r1, _r2 = (
        _LABEL_HEADER.unpack(raw)
    )
    if magic != LABEL_MAGIC:
        raise ValueError(
            f"{path!r} has trailing bytes that are not a label section "
            "(bad label magic)"
        )
    if mode_code not in _LABEL_MODE_NAMES:
        raise ValueError(f"{path!r} has unknown label-section mode {mode_code}")
    if num_hubs < 0 or num_label_entries < 0:
        raise ValueError(
            f"{path!r} has a corrupt label header (negative plane size)"
        )
    return mode_code, num_hubs, num_label_entries, generation, section_start


def load_labels(path: str, mmap: bool = True):
    """Load the label section of a store file, or ``None`` when it has none.

    Returns a :class:`~repro.signed.labels.LabelIndex` whose planes are
    read-only :class:`numpy.memmap` views with ``mmap=True`` (attach cost is
    page-cache metadata, like the CSR planes) or owned arrays with
    ``mmap=False``.  Version-1 files and version-2 files saved without
    ``labels`` return ``None``.
    """
    require_numpy("the snapshot store")
    import numpy as np

    from repro.signed.labels import LabelIndex

    with open(path, "rb") as handle:
        version, _kind, num_nodes, num_entries, _generation, table_nbytes = (
            _read_header(handle, path)
        )
        _layout, base = _plane_layout(num_nodes, num_entries, table_nbytes)
        size = os.fstat(handle.fileno()).st_size
        header = _read_label_header(handle, path, version, base, size)
        if header is None:
            return None
        mode_code, num_hubs, num_label_entries, generation, section_start = header
        layout, total = _label_plane_layout(
            mode_code, num_nodes, num_hubs, num_label_entries, section_start
        )
        if size < total:
            raise ValueError(
                f"{path!r} label section is truncated (expected {total} bytes)"
            )
        planes = {}
        for name, (dtype, count, offset) in layout.items():
            if mmap:
                planes[name] = np.memmap(
                    handle, dtype=dtype, mode="r", offset=offset, shape=(count,)
                )
            else:
                handle.seek(offset)
                planes[name] = np.fromfile(handle, dtype=dtype, count=count)
    return LabelIndex.from_planes(
        _LABEL_MODE_NAMES[mode_code], num_nodes, generation, planes
    )


def snapshot_info(path: str) -> Dict[str, object]:
    """The header and layout of a store file, without loading any plane.

    Powers ``repro-teams snapshot info`` (and its ``--json`` form); raises
    the same :class:`ValueError` diagnostics as :func:`load_snapshot` on
    non-store or truncated files.  Runs without numpy — the layout computes
    from the headers alone.  ``"labels"`` summarises the optional label
    section (``None`` when the file has none) and its planes join the
    ``"planes"`` map.
    """
    with open(path, "rb") as handle:
        version, kind, num_nodes, num_entries, generation, table_nbytes = (
            _read_header(handle, path)
        )
        size = os.fstat(handle.fileno()).st_size
        layout, total = _plane_layout(num_nodes, num_entries, table_nbytes)
        labels: Optional[Dict[str, object]] = None
        label_header = _read_label_header(handle, path, version, total, size)
        if label_header is not None:
            mode_code, num_hubs, num_label_entries, label_generation, start = (
                label_header
            )
            label_layout, total = _label_plane_layout(
                mode_code, num_nodes, num_hubs, num_label_entries, start
            )
            layout = {**layout, **label_layout}
            labels = {
                "mode": _LABEL_MODE_NAMES[mode_code],
                "num_hubs": num_hubs,
                "num_label_entries": num_label_entries,
                "generation": label_generation,
            }
    return {
        "path": path,
        "version": version,
        "num_nodes": num_nodes,
        "num_edges": num_entries // 2,
        "num_entries": num_entries,
        "generation": generation,
        "node_table_kind": "range" if kind == NODE_TABLE_RANGE else "pickle",
        "node_table_nbytes": table_nbytes,
        "file_nbytes": size,
        "expected_nbytes": total,
        "labels": labels,
        "planes": {
            name: {"dtype": dtype, "count": count, "offset": offset}
            for name, (dtype, count, offset) in layout.items()
        },
    }
