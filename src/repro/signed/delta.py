"""Structured mutation log for dynamic signed graphs.

:class:`GraphDelta` records the effective mutations applied to a
:class:`~repro.signed.graph.SignedGraph` since its last CSR snapshot, as typed
events (edge add / remove / re-sign, node add / remove).  The log is the input
to :meth:`~repro.signed.csr.CSRSignedGraph.apply_delta`, which patches the
snapshot's flat arrays in place of a full rebuild when the delta is small.

Only *effective* mutations are recorded — a ``set_sign`` writing the sign an
edge already has, or ``add_edge`` re-adding an identical edge, is a no-op at
the graph level and therefore never reaches the log (and never invalidates
the snapshot or any downstream cache).

The log is bounded: past :data:`DEFAULT_MAX_DELTA_EVENTS` events it flips to
``overflowed`` and drops its contents, signalling "too much churn — rebuild
from scratch".  This keeps a graph that is mutated heavily between snapshots
from accumulating an unbounded event list.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, List, Set, Tuple

Node = Hashable
Sign = int

#: Events a delta log holds before flipping to ``overflowed`` (full-rebuild
#: territory anyway: the apply threshold is a few percent of the edge count).
DEFAULT_MAX_DELTA_EVENTS = 65_536

#: Fraction of the edge count a change batch may reach before delta-maintained
#: consumers (the CSR view, the distance-label index) abandon in-place patching
#: and rebuild from scratch.
DELTA_REBUILD_FRACTION = 0.05

#: Floor on the patch budget, so tiny graphs still take the patch path for
#: small batches instead of always rebuilding.
MIN_DELTA_EVENTS = 32


def within_patch_budget(num_events: int, num_edges: int) -> bool:
    """True iff a batch of ``num_events`` mutations on a graph with
    ``num_edges`` edges is small enough to patch incrementally.

    This is the single rebuild threshold shared by every delta-maintained
    structure — ``SignedGraph.csr_view`` and the label index in
    :mod:`repro.signed.labels` both patch iff the churn since their snapshot
    stays within ``max(MIN_DELTA_EVENTS, DELTA_REBUILD_FRACTION * edges)``.
    """
    return num_events <= max(MIN_DELTA_EVENTS, int(DELTA_REBUILD_FRACTION * num_edges))


class GraphDelta:
    """Typed log of the mutations applied since the last CSR snapshot.

    Attributes
    ----------
    edges_added / edges_removed:
        ``(u, v, sign)`` / ``(u, v)`` events, in application order.
    signs_changed:
        ``(u, v, new_sign)`` events for in-place re-signs.
    nodes_added / nodes_removed:
        Node events, in application order.
    overflowed:
        True once the log exceeded ``max_events``; contents are dropped and
        consumers must fall back to a full rebuild.
    """

    __slots__ = (
        "edges_added",
        "edges_removed",
        "signs_changed",
        "nodes_added",
        "nodes_removed",
        "overflowed",
        "max_events",
    )

    def __init__(self, max_events: int = DEFAULT_MAX_DELTA_EVENTS) -> None:
        if max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.edges_added: List[Tuple[Node, Node, Sign]] = []
        self.edges_removed: List[Tuple[Node, Node]] = []
        self.signs_changed: List[Tuple[Node, Node, Sign]] = []
        self.nodes_added: List[Node] = []
        self.nodes_removed: List[Node] = []
        self.overflowed = False
        self.max_events = max_events

    # ---------------------------------------------------------------- record

    def record_edge_added(self, u: Node, v: Node, sign: Sign) -> None:
        """Log the addition of edge ``(u, v, sign)``."""
        if not self.overflowed:
            self.edges_added.append((u, v, sign))
            self._check_overflow()

    def record_edge_removed(self, u: Node, v: Node) -> None:
        """Log the removal of edge ``(u, v)``."""
        if not self.overflowed:
            self.edges_removed.append((u, v))
            self._check_overflow()

    def record_sign_changed(self, u: Node, v: Node, sign: Sign) -> None:
        """Log the in-place re-sign of edge ``(u, v)`` to ``sign``."""
        if not self.overflowed:
            self.signs_changed.append((u, v, sign))
            self._check_overflow()

    def record_node_added(self, node: Node) -> None:
        """Log the addition of ``node``."""
        if not self.overflowed:
            self.nodes_added.append(node)
            self._check_overflow()

    def record_node_removed(self, node: Node) -> None:
        """Log the removal of ``node``."""
        if not self.overflowed:
            self.nodes_removed.append(node)
            self._check_overflow()

    def _check_overflow(self) -> None:
        if len(self) > self.max_events:
            self.overflowed = True
            self.edges_added.clear()
            self.edges_removed.clear()
            self.signs_changed.clear()
            self.nodes_added.clear()
            self.nodes_removed.clear()

    # ----------------------------------------------------------------- query

    def __len__(self) -> int:
        """Total number of logged events."""
        return (
            len(self.edges_added)
            + len(self.edges_removed)
            + len(self.signs_changed)
            + len(self.nodes_added)
            + len(self.nodes_removed)
        )

    def __bool__(self) -> bool:
        return self.overflowed or len(self) > 0

    @property
    def num_edge_events(self) -> int:
        """Number of edge-level events (the size measure the apply threshold uses)."""
        return len(self.edges_added) + len(self.edges_removed) + len(self.signs_changed)

    @property
    def has_node_changes(self) -> bool:
        """True iff the node set (and hence the dense-id mapping) changed."""
        return bool(self.nodes_added or self.nodes_removed)

    def touched_nodes(self) -> FrozenSet[Node]:
        """Every node whose adjacency row (or existence) the delta affects."""
        touched: Set[Node] = set()
        for u, v, _sign in self.edges_added:
            touched.add(u)
            touched.add(v)
        for u, v in self.edges_removed:
            touched.add(u)
            touched.add(v)
        for u, v, _sign in self.signs_changed:
            touched.add(u)
            touched.add(v)
        touched.update(self.nodes_added)
        touched.update(self.nodes_removed)
        return frozenset(touched)

    def __repr__(self) -> str:
        if self.overflowed:
            return f"GraphDelta(overflowed, max_events={self.max_events})"
        return (
            f"GraphDelta(+e={len(self.edges_added)}, -e={len(self.edges_removed)}, "
            f"~e={len(self.signs_changed)}, +n={len(self.nodes_added)}, "
            f"-n={len(self.nodes_removed)})"
        )
