"""Connected components of a signed graph (sign-agnostic connectivity).

The paper assumes the input graph is connected; the dataset loaders use
:func:`largest_connected_component` to restrict real or synthetic networks to
their giant component before running any experiment.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

from repro.signed.graph import Node, SignedGraph


def connected_components(graph: SignedGraph) -> List[Set[Node]]:
    """Return the connected components of ``graph`` as a list of node sets.

    Components are returned in decreasing order of size (ties broken by the
    smallest contained node's repr, for determinism).
    """
    remaining = set(graph.nodes())
    components: List[Set[Node]] = []
    while remaining:
        start = next(iter(remaining))
        component = _bfs_component(graph, start)
        components.append(component)
        remaining -= component
    components.sort(key=lambda comp: (-len(comp), min(repr(n) for n in comp)))
    return components


def largest_connected_component(graph: SignedGraph) -> SignedGraph:
    """Return the subgraph induced by the largest connected component.

    Node and adjacency-row order follow the parent graph (a component is
    closed under adjacency, so every surviving row is copied verbatim).  That
    makes the result bit-identical to the vectorised CSR-first restriction in
    :mod:`repro.signed.ingest`, which everything keyed off node order — the
    loader snapshot cache and the Zipf skill model — relies on.

    An empty graph is returned unchanged.
    """
    if graph.number_of_nodes() == 0:
        return graph.copy()
    component = connected_components(graph)[0]
    sub = SignedGraph()
    adjacency = sub._adjacency
    positive_entries = 0
    for node in graph.nodes():
        if node not in component:
            continue
        row = dict(graph._adjacency[node])
        adjacency[node] = row
        positive_entries += sum(1 for sign in row.values() if sign > 0)
    sub._num_edges = sum(len(row) for row in adjacency.values()) // 2
    sub._num_positive = positive_entries // 2
    return sub


def is_connected(graph: SignedGraph) -> bool:
    """True iff ``graph`` is non-empty and connected (ignoring edge signs)."""
    if graph.number_of_nodes() == 0:
        return False
    start = next(iter(graph.nodes()))
    return len(_bfs_component(graph, start)) == graph.number_of_nodes()


def _bfs_component(graph: SignedGraph, start: Node) -> Set[Node]:
    """Return the set of nodes reachable from ``start`` (sign-agnostic BFS)."""
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return seen
