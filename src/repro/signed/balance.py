"""Structural balance analysis of signed graphs.

A signed graph is *structurally balanced* iff it contains no cycle with an odd
number of negative edges, or equivalently (Cartwright & Harary, 1956) iff its
nodes can be split into two camps such that all edges inside a camp are
positive and all edges across camps are negative.  The SBP compatibility
relation of the paper asks for a positive path whose *induced* subgraph is
structurally balanced, so cheap balance checks on small induced subgraphs are
a core primitive here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.signed.graph import NEGATIVE, POSITIVE, Node, SignedGraph
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class BalanceReport:
    """Result of a balance check.

    Attributes
    ----------
    balanced:
        Whether the graph is structurally balanced.
    partition:
        When balanced, a two-camp partition ``(camp_a, camp_b)`` witnessing
        balance (one camp may be empty); ``None`` otherwise.
    violating_edge:
        When unbalanced, one edge ``(u, v)`` whose sign contradicts the camp
        assignment discovered by the two-colouring; ``None`` otherwise.
    """

    balanced: bool
    partition: Optional[Tuple[frozenset, frozenset]] = None
    violating_edge: Optional[Tuple[Node, Node]] = None


def harary_bipartition(graph: SignedGraph) -> BalanceReport:
    """Check structural balance via signed two-colouring (Harary's theorem).

    Runs a BFS per connected component, assigning each node a camp in
    ``{0, 1}``: a positive edge forces equal camps, a negative edge forces
    opposite camps.  The graph is balanced iff no edge contradicts the forced
    assignment.  Complexity O(|V| + |E|).
    """
    camp: Dict[Node, int] = {}
    for start in graph.nodes():
        if start in camp:
            continue
        camp[start] = 0
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor, sign in graph.signed_neighbors(node):
                expected = camp[node] if sign == POSITIVE else 1 - camp[node]
                if neighbor not in camp:
                    camp[neighbor] = expected
                    queue.append(neighbor)
                elif camp[neighbor] != expected:
                    return BalanceReport(balanced=False, violating_edge=(node, neighbor))
    camp_a = frozenset(n for n, c in camp.items() if c == 0)
    camp_b = frozenset(n for n, c in camp.items() if c == 1)
    return BalanceReport(balanced=True, partition=(camp_a, camp_b))


def is_balanced(graph: SignedGraph) -> bool:
    """True iff ``graph`` is structurally balanced (no odd-negative cycle)."""
    return harary_bipartition(graph).balanced


def induced_subgraph_is_balanced(graph: SignedGraph, nodes: Iterable[Node]) -> bool:
    """True iff the subgraph of ``graph`` induced by ``nodes`` is balanced.

    This is the check the SBP compatibility definition applies to the nodes of
    a candidate path.
    """
    return is_balanced(graph.subgraph(nodes))


def path_is_balanced(graph: SignedGraph, path: Sequence[Node]) -> bool:
    """True iff the subgraph induced by the nodes of ``path`` is balanced.

    ``path`` is a node sequence; the check uses *all* edges of ``graph``
    between path nodes (including shortcut edges that are not on the path),
    exactly as Definition 3.4 of the paper requires.
    """
    return induced_subgraph_is_balanced(graph, path)


def triangle_census(graph: SignedGraph) -> Dict[str, int]:
    """Count signed triangles by type.

    Returns a dictionary with keys ``'+++'``, ``'++-'``, ``'+--'``, ``'---'``
    (number of positive edges in decreasing order).  Under structural balance
    theory, ``'+++'`` and ``'+--'`` are the *balanced* triangle types.
    """
    counts = {"+++": 0, "++-": 0, "+--": 0, "---": 0}
    nodes = graph.nodes()
    index = {node: i for i, node in enumerate(nodes)}
    for u in nodes:
        for v in graph.neighbors(u):
            if index[v] <= index[u]:
                continue
            for w in graph.neighbors(v):
                if index[w] <= index[v] or not graph.has_edge(u, w):
                    continue
                positives = sum(
                    1
                    for a, b in ((u, v), (v, w), (u, w))
                    if graph.sign(a, b) == POSITIVE
                )
                key = "+" * positives + "-" * (3 - positives)
                counts[key] += 1
    return counts


def balanced_triangle_fraction(graph: SignedGraph) -> float:
    """Fraction of triangles that are balanced (``'+++'`` or ``'+--'``).

    Returns ``1.0`` for triangle-free graphs (vacuously balanced).
    """
    census = triangle_census(graph)
    total = sum(census.values())
    if total == 0:
        return 1.0
    return (census["+++"] + census["+--"]) / total


def frustration_index_greedy(
    graph: SignedGraph,
    iterations: int = 3,
    seed: RandomState = None,
) -> Tuple[int, Dict[Node, int]]:
    """Greedy upper bound on the frustration index.

    The frustration index is the minimum number of edges whose removal (or
    sign flip) makes the graph balanced; computing it exactly is NP-hard.  The
    heuristic assigns each node a camp, then repeatedly moves any node whose
    switch decreases the number of *frustrated* edges (positive edges across
    camps or negative edges within a camp), restarting ``iterations`` times
    from random assignments and keeping the best result.

    Returns ``(frustrated_edge_count, camp_assignment)``.
    """
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    rng = ensure_rng(seed)
    nodes = graph.nodes()
    best_count: Optional[int] = None
    best_assignment: Dict[Node, int] = {}
    for _ in range(iterations):
        camp = {node: rng.randint(0, 1) for node in nodes}
        improved = True
        while improved:
            improved = False
            for node in nodes:
                gain = _switch_gain(graph, camp, node)
                if gain > 0:
                    camp[node] = 1 - camp[node]
                    improved = True
        count = _count_frustrated(graph, camp)
        if best_count is None or count < best_count:
            best_count = count
            best_assignment = dict(camp)
    return best_count if best_count is not None else 0, best_assignment


def _edge_is_frustrated(sign: int, same_camp: bool) -> bool:
    return (sign == POSITIVE and not same_camp) or (sign == NEGATIVE and same_camp)


def _switch_gain(graph: SignedGraph, camp: Dict[Node, int], node: Node) -> int:
    """Reduction in frustrated edges if ``node`` switches camp."""
    gain = 0
    for neighbor, sign in graph.signed_neighbors(node):
        same = camp[node] == camp[neighbor]
        if _edge_is_frustrated(sign, same):
            gain += 1
        if _edge_is_frustrated(sign, not same):
            gain -= 1
    return gain


def _count_frustrated(graph: SignedGraph, camp: Dict[Node, int]) -> int:
    count = 0
    for u, v, sign in graph.edge_triples():
        if _edge_is_frustrated(sign, camp[u] == camp[v]):
            count += 1
    return count
