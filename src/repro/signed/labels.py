"""Distance-labelling index over the signed graph's reachability structure.

Two modes behind one :class:`LabelIndex`:

* **exact** — pruned 2-hop hub labels (Akiba/Iwata/Yoshida-style pruned
  landmark labelling): every node stores a sorted list of ``(hub rank,
  distance)`` pairs such that ``d(u, v) = min over common hubs h of
  d(u, h) + d(h, v)`` exactly.  Hubs are processed in degree order; each
  hub's pruned BFS is vectorised frontier-at-a-time over the CSR arrays,
  with the prune test evaluated for a whole frontier at once via a
  segment-min over the labels built so far.  Affordable up to
  :data:`LABELS_EXACT_MAX_NODES` nodes (distances fit ``uint16``).
* **landmark** — degree-ranked landmark sketches: a dense ``int32[H, n]``
  matrix of BFS distances from the ``H`` highest-degree nodes, built by the
  process pool (the ``build_labels`` kernel, one dense source per row,
  shipped through the result arena).  Queries get an upper bound
  ``min_l d(u, l) + d(l, v)`` and a lower bound ``max_l |d(u, l) - d(l, v)|``;
  the bound is *provably exact* when they coincide (which subsumes
  hub-adjacent pairs) or when landmark coverage proves the endpoints live in
  different components (distance is exactly infinite).  Anything else is a
  miss and the caller falls back to exact BFS.

The index is a **snapshot** stamped with the graph generation it was built
at, like the CSR view.  :func:`refresh_label_index` delta-patches it under
churn — clean components keep their labels (rank-remapped for exact mode,
BFS rows reused for landmark mode) and only affected components are
re-labelled — with a full rebuild past the same
:func:`~repro.signed.delta.within_patch_budget` threshold the CSR view uses.
When the whole graph is one affected component (the common connected case),
exact mode falls back to a bounded *affected-hub resweep* instead of a
rebuild: hubs whose pruned BFS trees provably cannot have changed reuse
their old label contributions and only the remainder re-run their BFS.
Patched indexes are bit-identical to a from-scratch rebuild (property-tested
in ``tests/test_labels.py``).

Construction requires numpy; callers degrade to the dict-BFS path when it is
missing (see ``DistanceOracle``).
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro.signed.csr import CSRSignedGraph, UNREACHABLE
from repro.signed.delta import within_patch_budget
from repro.signed.graph import SignedGraph
from repro.utils.optional import require_numpy

#: Exact 2-hop labels are only attempted at or below this node count — it
#: bounds label distances to ``uint16`` and keeps build cost in the
#: seconds-not-minutes range at the 50k benchmark scale.
LABELS_EXACT_MAX_NODES = 65_536

#: Landmark rows kept when the budget allows (4 bytes x num_nodes per row).
DEFAULT_NUM_LANDMARKS = 64

#: Default byte budget for the label planes (matches
#: ``ExecutionPolicy.label_budget_bytes``).
DEFAULT_LABEL_BUDGET_BYTES = 64 * 2**20

MODE_EXACT = "exact"
MODE_LANDMARK = "landmark"

#: Internal "no label / unreachable" sentinel for prune queries.  Far above
#: any real distance (< 2**16) yet safe to add two of plus a distance without
#: overflowing int32.
_INF = 1 << 30

#: Hubs labelled per dense block in the exact build.  Each block keeps its
#: distances in an ``int32[n, _BLOCK]`` matrix and is merged into the CSR
#: label arrays at once, so merge cost is paid n/_BLOCK times, not n times.
_BLOCK = 64


def _np():
    require_numpy("distance-label index")
    import numpy as np

    return np


def hub_order_for(csr: CSRSignedGraph):
    """Dense node ids ordered by descending degree (ties: ascending id).

    This is the canonical hub/landmark ranking; it is a pure function of the
    snapshot, so a patched index and a from-scratch rebuild agree on it.
    """
    np = _np()
    degrees = csr.degrees()
    return np.lexsort((np.arange(len(degrees)), -degrees)).astype(np.int32)


class LabelIndex:
    """An immutable distance-label snapshot (see module docstring).

    Attributes
    ----------
    mode:
        ``"exact"`` or ``"landmark"``.
    requested_mode:
        The mode asked of :func:`build_label_index` (``"auto"`` may resolve
        to either); refreshes re-request the same thing.
    num_nodes / generation:
        Snapshot dimensions: dense-id space size and the
        :attr:`SignedGraph.generation` the index reflects.
    hub_order / label_indptr / label_hubs / label_dists:
        Exact mode: the rank -> dense-id permutation, and per-node CSR label
        arrays of ``(hub rank, distance)`` pairs sorted by rank.
    landmark_ids / landmark_rows:
        Landmark mode: dense ids of the ``H`` landmarks and the ``int32[H, n]``
        BFS-distance matrix (:data:`~repro.signed.csr.UNREACHABLE` for
        unreachable pairs).
    """

    __slots__ = (
        "mode",
        "requested_mode",
        "num_nodes",
        "generation",
        "hub_order",
        "label_indptr",
        "label_hubs",
        "label_dists",
        "landmark_ids",
        "landmark_rows",
        "_scratch",
    )

    def __init__(
        self,
        mode: str,
        num_nodes: int,
        generation: int,
        *,
        requested_mode: Optional[str] = None,
        hub_order=None,
        label_indptr=None,
        label_hubs=None,
        label_dists=None,
        landmark_ids=None,
        landmark_rows=None,
    ) -> None:
        if mode not in (MODE_EXACT, MODE_LANDMARK):
            raise ValueError(f"unknown label-index mode {mode!r}")
        self.mode = mode
        self.requested_mode = requested_mode or mode
        self.num_nodes = int(num_nodes)
        self.generation = int(generation)
        self.hub_order = hub_order
        self.label_indptr = label_indptr
        self.label_hubs = label_hubs
        self.label_dists = label_dists
        self.landmark_ids = landmark_ids
        self.landmark_rows = landmark_rows
        self._scratch = None

    # ------------------------------------------------------------------ sizes

    @property
    def num_entries(self) -> int:
        """Label entries (exact) or landmark-row cells (landmark)."""
        if self.mode == MODE_EXACT:
            return int(self.label_hubs.shape[0])
        return int(self.landmark_rows.size)

    @property
    def num_hubs(self) -> int:
        if self.mode == MODE_EXACT:
            return int(self.hub_order.shape[0])
        return int(self.landmark_ids.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes held by the label planes (the budget's measure)."""
        return sum(int(plane.nbytes) for _name, plane in self.planes())

    def stats(self) -> Dict[str, object]:
        """Summary dict for observability (CLI, oracle ``index_stats``)."""
        return {
            "mode": self.mode,
            "num_nodes": self.num_nodes,
            "num_hubs": self.num_hubs,
            "num_entries": self.num_entries,
            "nbytes": self.nbytes,
            "generation": self.generation,
        }

    def stamped(self, generation: int) -> "LabelIndex":
        """A copy of this index bound to ``generation`` (same planes).

        Used when adopting a persisted index for a freshly loaded graph whose
        generation counter restarted — the caller asserts the graph content
        matches what the index was built from.
        """
        if generation == self.generation:
            return self
        return LabelIndex(
            self.mode,
            self.num_nodes,
            generation,
            requested_mode=self.requested_mode,
            hub_order=self.hub_order,
            label_indptr=self.label_indptr,
            label_hubs=self.label_hubs,
            label_dists=self.label_dists,
            landmark_ids=self.landmark_ids,
            landmark_rows=self.landmark_rows,
        )

    # ------------------------------------------------------------ persistence

    def planes(self) -> List[Tuple[str, object]]:
        """The ``(name, array)`` planes in canonical store order."""
        if self.mode == MODE_EXACT:
            return [
                ("label_indptr", self.label_indptr),
                ("label_hubs", self.label_hubs),
                ("label_dists", self.label_dists),
                ("hub_order", self.hub_order),
            ]
        return [
            ("landmark_ids", self.landmark_ids),
            ("landmark_rows", self.landmark_rows.reshape(-1)),
        ]

    @classmethod
    def from_planes(
        cls,
        mode: str,
        num_nodes: int,
        generation: int,
        planes: Dict[str, object],
    ) -> "LabelIndex":
        """Rebuild an index from store planes (see :mod:`repro.signed.store`)."""
        if mode == MODE_EXACT:
            return cls(
                MODE_EXACT,
                num_nodes,
                generation,
                hub_order=planes["hub_order"],
                label_indptr=planes["label_indptr"],
                label_hubs=planes["label_hubs"],
                label_dists=planes["label_dists"],
            )
        rows = planes["landmark_rows"]
        num_hubs = int(planes["landmark_ids"].shape[0])
        return cls(
            MODE_LANDMARK,
            num_nodes,
            generation,
            landmark_ids=planes["landmark_ids"],
            landmark_rows=rows.reshape(num_hubs, num_nodes),
        )

    # ---------------------------------------------------------------- queries

    def _scratch_table(self):
        np = _np()
        if self._scratch is None:
            self._scratch = np.full(self.num_nodes, _INF, dtype=np.int32)
        return self._scratch

    def query(self, u: int, v: int) -> int:
        """Exact distance between dense ids ``u`` and ``v``
        (:data:`~repro.signed.csr.UNREACHABLE` when disconnected).

        Exact mode only — landmark mode callers use :meth:`bounds`.
        """
        np = _np()
        indptr = self.label_indptr
        su, eu = int(indptr[u]), int(indptr[u + 1])
        sv, ev = int(indptr[v]), int(indptr[v + 1])
        hu = np.asarray(self.label_hubs[su:eu])
        hv = np.asarray(self.label_hubs[sv:ev])
        common, iu, iv = np.intersect1d(hu, hv, assume_unique=True, return_indices=True)
        if common.size == 0:
            return UNREACHABLE
        total = self.label_dists[su:eu][iu].astype(np.int32) + self.label_dists[sv:ev][iv]
        return int(total.min())

    def batch_query_from(self, source: int, targets):
        """Exact distances from dense id ``source`` to each dense id in
        ``targets`` as ``int32`` (:data:`~repro.signed.csr.UNREACHABLE` where
        disconnected).  Exact mode only."""
        np = _np()
        targets = np.asarray(targets, dtype=np.int64)
        out = np.full(targets.shape[0], _INF, dtype=np.int32)
        if targets.shape[0] == 0:
            return out
        table = self._scratch_table()
        indptr = self.label_indptr
        ss, se = int(indptr[source]), int(indptr[source + 1])
        source_hubs = np.asarray(self.label_hubs[ss:se])
        table[source_hubs] = self.label_dists[ss:se]
        starts = indptr[targets]
        lengths = indptr[targets + 1] - starts
        total = int(lengths.sum())
        if total:
            offsets = np.cumsum(lengths) - lengths
            flat = (
                np.repeat(starts, lengths)
                + np.arange(total, dtype=np.int64)
                - np.repeat(offsets, lengths)
            )
            values = table[self.label_hubs[flat]] + self.label_dists[flat]
            nonempty = lengths > 0
            out[nonempty] = np.minimum.reduceat(values, offsets[nonempty])
        table[source_hubs] = _INF
        out[out >= _INF] = UNREACHABLE
        return out

    def batch_bounds_from(self, source: int, targets):
        """Landmark bounds from dense id ``source`` to each of ``targets``.

        Returns ``(upper, exact)``: ``upper`` is the ``int32`` landmark upper
        bound (:data:`~repro.signed.csr.UNREACHABLE` when no landmark connects
        the pair), and ``exact`` is a bool array flagging entries whose value
        is *provably* the true distance — upper and lower bounds coincide, or
        landmark coverage proves the endpoints lie in different components
        (true distance exactly infinite).  Non-exact entries require a BFS
        fallback.  Landmark mode only.
        """
        np = _np()
        targets = np.asarray(targets, dtype=np.int64)
        rows = self.landmark_rows
        du = np.asarray(rows[:, source], dtype=np.int64)
        dv = np.asarray(rows[:, targets], dtype=np.int64)
        source_covered = du != UNREACHABLE
        target_covered = dv != UNREACHABLE
        common = source_covered[:, None] & target_covered
        sums = np.where(common, du[:, None] + dv, _INF)
        diffs = np.where(common, np.abs(du[:, None] - dv), -1)
        upper = sums.min(axis=0)
        lower = diffs.max(axis=0)
        # A landmark seeing exactly one endpoint proves the endpoints live in
        # different components: the true distance is infinite, exactly.
        split = (source_covered[:, None] != target_covered).any(axis=0)
        exact = ((upper < _INF) & (upper == lower)) | split
        upper = np.where(upper >= _INF, UNREACHABLE, upper).astype(np.int32)
        return upper, exact

    def bounds(self, u: int, v: int) -> Tuple[int, bool]:
        """Single-pair form of :meth:`batch_bounds_from`."""
        np = _np()
        upper, exact = self.batch_bounds_from(u, np.asarray([v], dtype=np.int64))
        return int(upper[0]), bool(exact[0])


#: Snapshot → label-index registry.  Every oracle that builds, refreshes or
#: attaches an index records it here against the CSR snapshot it serves;
#: anything that later *persists* that snapshot (the pool's ``snapshot_store``
#: publish mode, the loader cache) asks :func:`snapshot_labels_for` and writes
#: the ``.store`` v2 label section alongside the planes — so workers and
#: cache hits reload the index instead of rebuilding it.  Weak keys: entries
#: live exactly as long as their snapshot does.
_SNAPSHOT_LABELS: "weakref.WeakKeyDictionary[CSRSignedGraph, LabelIndex]" = (
    weakref.WeakKeyDictionary()
)


def register_snapshot_labels(csr: CSRSignedGraph, index: Optional[LabelIndex]) -> None:
    """Record ``index`` as the label index serving the snapshot ``csr``."""
    if index is not None:
        _SNAPSHOT_LABELS[csr] = index


def snapshot_labels_for(csr: CSRSignedGraph) -> Optional[LabelIndex]:
    """The registered label index for ``csr``, if still generation-exact."""
    index = _SNAPSHOT_LABELS.get(csr)
    if index is None:
        return None
    if (
        index.num_nodes != csr.number_of_nodes()
        or index.generation != csr.generation
    ):
        return None
    return index


def labels_equal(left: Optional[LabelIndex], right: Optional[LabelIndex]) -> bool:
    """Structural equality of two indexes (the patch-vs-rebuild test oracle)."""
    np = _np()
    if left is None or right is None:
        return left is right
    if (
        left.mode != right.mode
        or left.num_nodes != right.num_nodes
        or left.generation != right.generation
    ):
        return False
    for (_name_l, a), (_name_r, b) in zip(left.planes(), right.planes()):
        if not np.array_equal(np.asarray(a), np.asarray(b)):
            return False
    return True


# --------------------------------------------------------------------- build


def _label_nbytes(indptr, hubs, dists) -> int:
    return int(indptr.nbytes) + int(hubs.nbytes) + int(dists.nbytes)


def _prune_query(np, cand, lab_indptr, lab_hubs, lab_dists, table, block, block_cols, block_vals):
    """query(hub, u) for every u in ``cand`` against the labels built so far.

    ``table`` holds the current hub's own label distances scattered by rank;
    ``block_cols``/``block_vals`` are the hub's labels among the current
    block's earlier (not-yet-merged) hubs, looked up in the dense ``block``
    matrix instead.
    """
    starts = lab_indptr[cand]
    lengths = lab_indptr[cand + 1] - starts
    result = np.full(cand.shape[0], _INF, dtype=np.int32)
    total = int(lengths.sum())
    if total:
        offsets = np.cumsum(lengths) - lengths
        flat = (
            np.repeat(starts, lengths)
            + np.arange(total, dtype=np.int64)
            - np.repeat(offsets, lengths)
        )
        values = table[lab_hubs[flat]] + lab_dists[flat]
        nonempty = lengths > 0
        result[nonempty] = np.minimum.reduceat(values, offsets[nonempty])
    if block_cols.shape[0]:
        via_block = (block[cand[:, None], block_cols] + block_vals).min(axis=1)
        np.minimum(result, via_block, out=result)
    return result


def _pll_labels(csr: CSRSignedGraph, hubs, rank_of, budget_bytes: Optional[int]):
    """Pruned-landmark labels rooted at ``hubs`` (dense ids, ascending rank).

    ``rank_of`` maps dense id -> global rank; label entries store ranks so
    per-node lists sort canonically.  For a full build ``hubs`` is every node;
    the delta patch passes only the dirty components' nodes (their BFSes
    cannot escape a dirty component, so labels stay confined to it).

    Returns ``(label_indptr, label_hubs, label_dists)`` over all ``n`` nodes
    (empty lists for nodes never reached), or ``None`` when ``budget_bytes``
    is exceeded.
    """
    np = _np()
    indptr, indices = csr.indptr, csr.indices
    n = csr.number_of_nodes()
    lab_indptr = np.zeros(n + 1, dtype=np.int64)
    lab_hubs = np.empty(0, dtype=np.int32)
    lab_dists = np.empty(0, dtype=np.uint16)
    table = np.full(n, _INF, dtype=np.int32)
    visited = np.zeros(n, dtype=bool)
    for block_start in range(0, len(hubs), _BLOCK):
        block_hubs = hubs[block_start : block_start + _BLOCK]
        block_size = len(block_hubs)
        block_ranks = np.asarray(rank_of[block_hubs], dtype=np.int32)
        block = np.full((n, block_size), _INF, dtype=np.int32)
        for j in range(block_size):
            hub = int(block_hubs[j])
            hub_start, hub_end = int(lab_indptr[hub]), int(lab_indptr[hub + 1])
            hub_label_ranks = lab_hubs[hub_start:hub_end]
            table[hub_label_ranks] = lab_dists[hub_start:hub_end]
            block_cols = np.flatnonzero(block[hub, :j] != _INF)
            block_vals = block[hub, block_cols]
            block[hub, j] = 0
            visited[hub] = True
            touched = [np.asarray([hub], dtype=np.int64)]
            frontier = touched[0]
            dist = 0
            while frontier.shape[0]:
                dist += 1
                starts = indptr[frontier]
                counts = indptr[frontier + 1] - starts
                total = int(counts.sum())
                if total == 0:
                    break
                offsets = np.cumsum(counts) - counts
                neighbors = indices[
                    np.repeat(starts, counts)
                    + np.arange(total, dtype=np.int64)
                    - np.repeat(offsets, counts)
                ]
                cand = neighbors[~visited[neighbors]]
                if cand.shape[0] == 0:
                    break
                cand = np.unique(cand).astype(np.int64)
                visited[cand] = True
                touched.append(cand)
                pruned_at = _prune_query(
                    np, cand, lab_indptr, lab_hubs, lab_dists, table, block, block_cols, block_vals
                )
                labelled = cand[pruned_at > dist]
                if labelled.shape[0]:
                    block[labelled, j] = dist
                frontier = labelled
            table[hub_label_ranks] = _INF
            for chunk in touched:
                visited[chunk] = False
        lab_indptr, lab_hubs, lab_dists = _merge_block(
            np, n, lab_indptr, lab_hubs, lab_dists, block, block_ranks
        )
        if budget_bytes is not None and _label_nbytes(lab_indptr, lab_hubs, lab_dists) > budget_bytes:
            return None
    return lab_indptr, lab_hubs, lab_dists


def _merge_block(np, n, lab_indptr, lab_hubs, lab_dists, block, block_ranks):
    """Merge one dense hub block into the CSR label arrays.

    Per node, existing entries (smaller ranks) first, then this block's
    columns in rank order — ``np.nonzero`` on the row-major matrix yields
    exactly that.
    """
    labelled_mask = block != _INF
    new_counts = labelled_mask.sum(axis=1).astype(np.int64)
    rows, cols = np.nonzero(labelled_mask)
    add_hubs = block_ranks[cols]
    add_dists = block[rows, cols].astype(np.uint16)
    old_counts = np.diff(lab_indptr)
    merged_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(old_counts + new_counts, out=merged_indptr[1:])
    merged_hubs = np.empty(int(merged_indptr[-1]), dtype=np.int32)
    merged_dists = np.empty(int(merged_indptr[-1]), dtype=np.uint16)
    if lab_hubs.shape[0]:
        shift = merged_indptr[:-1] - lab_indptr[:-1]
        dest = np.arange(lab_hubs.shape[0], dtype=np.int64) + np.repeat(shift, old_counts)
        merged_hubs[dest] = lab_hubs
        merged_dists[dest] = lab_dists
    if add_hubs.shape[0]:
        seg_starts = np.cumsum(new_counts) - new_counts
        within = np.arange(add_hubs.shape[0], dtype=np.int64) - np.repeat(
            seg_starts, new_counts
        )
        dest = np.repeat(merged_indptr[:-1] + old_counts, new_counts) + within
        merged_hubs[dest] = add_hubs
        merged_dists[dest] = add_dists
    return merged_indptr, merged_hubs, merged_dists


def _build_exact(
    csr: CSRSignedGraph, budget_bytes: Optional[int], requested_mode: str
) -> Optional[LabelIndex]:
    np = _np()
    n = csr.number_of_nodes()
    order = hub_order_for(csr)
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[order] = np.arange(n, dtype=np.int64)
    built = _pll_labels(csr, order, rank_of, budget_bytes)
    if built is None:
        return None
    lab_indptr, lab_hubs, lab_dists = built
    return LabelIndex(
        MODE_EXACT,
        n,
        csr.generation,
        requested_mode=requested_mode,
        hub_order=order,
        label_indptr=lab_indptr,
        label_hubs=lab_hubs,
        label_dists=lab_dists,
    )


def _num_landmarks(num_nodes: int, budget_bytes: Optional[int]) -> int:
    if budget_bytes is None:
        return min(DEFAULT_NUM_LANDMARKS, max(1, num_nodes))
    per_row = 4 * max(1, num_nodes)
    return max(1, min(DEFAULT_NUM_LANDMARKS, max(1, num_nodes), budget_bytes // per_row or 1))


def _bfs_rows(csr: CSRSignedGraph, sources: Sequence[int], executor, params):
    """One BFS distance row per source via the ``build_labels`` kernel."""
    np = _np()
    if executor is None:
        from repro.exec import serial_executor

        executor = serial_executor()
    results = executor.map_kernel(
        "build_labels", csr, [int(s) for s in sources], dict(params or {})
    )
    return [np.ascontiguousarray(row, dtype=np.int32) for row in results]


def _build_landmark(
    csr: CSRSignedGraph,
    budget_bytes: Optional[int],
    executor,
    params,
    requested_mode: str,
) -> LabelIndex:
    np = _np()
    n = csr.number_of_nodes()
    order = hub_order_for(csr)
    num_hubs = _num_landmarks(n, budget_bytes)
    landmark_ids = np.ascontiguousarray(order[:num_hubs], dtype=np.int32)
    rows = np.empty((num_hubs, n), dtype=np.int32)
    for position, row in enumerate(_bfs_rows(csr, landmark_ids, executor, params)):
        rows[position] = row
    return LabelIndex(
        MODE_LANDMARK,
        n,
        csr.generation,
        requested_mode=requested_mode,
        landmark_ids=landmark_ids,
        landmark_rows=rows,
    )


def build_label_index(
    csr: CSRSignedGraph,
    *,
    mode: str = "auto",
    budget_bytes: Optional[int] = DEFAULT_LABEL_BUDGET_BYTES,
    executor=None,
    params: Optional[dict] = None,
) -> LabelIndex:
    """Build a fresh :class:`LabelIndex` for the snapshot ``csr``.

    ``mode="auto"`` attempts exact 2-hop labels when the graph fits
    (:data:`LABELS_EXACT_MAX_NODES` nodes, labels within ``budget_bytes``)
    and falls back to landmark sketches otherwise; ``"exact"`` /
    ``"landmark"`` force a mode (``"exact"`` raises when infeasible).
    ``executor`` (an :mod:`repro.exec` executor) runs the landmark BFS rows —
    the exact build is inherently sequential in hub order and runs in
    process.
    """
    _np()
    if mode not in ("auto", MODE_EXACT, MODE_LANDMARK):
        raise ValueError(
            f"label-index mode must be 'auto', 'exact' or 'landmark'; got {mode!r}"
        )
    n = csr.number_of_nodes()
    if mode == MODE_EXACT:
        if n > LABELS_EXACT_MAX_NODES:
            raise ValueError(
                f"exact 2-hop labels support at most {LABELS_EXACT_MAX_NODES} nodes; "
                f"got {n} (use mode='landmark' or 'auto')"
            )
        index = _build_exact(csr, budget_bytes, mode)
        if index is None:
            raise ValueError(
                f"exact 2-hop labels exceed label_budget_bytes={budget_bytes}; "
                "raise the budget or use mode='landmark'"
            )
        return index
    if mode == "auto" and n <= LABELS_EXACT_MAX_NODES:
        index = _build_exact(csr, budget_bytes, mode)
        if index is not None:
            return index
    return _build_landmark(csr, budget_bytes, executor, params, mode)


# --------------------------------------------------------------------- churn


def _dirty_mask(csr: CSRSignedGraph, affected):
    np = _np()
    dirty = np.zeros(csr.number_of_nodes(), dtype=bool)
    for node in affected:
        position = csr._index.get(node)
        if position is None:
            return None
        dirty[position] = True
    return dirty


def _patch_landmark(
    index: LabelIndex, csr: CSRSignedGraph, dirty, budget_bytes, executor, params
) -> LabelIndex:
    np = _np()
    n = csr.number_of_nodes()
    order = hub_order_for(csr)
    num_hubs = _num_landmarks(n, budget_bytes)
    landmark_ids = np.ascontiguousarray(order[:num_hubs], dtype=np.int32)
    old_position = {int(lm): i for i, lm in enumerate(np.asarray(index.landmark_ids))}
    rows = np.empty((num_hubs, n), dtype=np.int32)
    stale: List[int] = []
    for i, landmark in enumerate(landmark_ids):
        previous = old_position.get(int(landmark))
        if previous is not None and not dirty[landmark]:
            # A clean landmark's component is untouched, so its whole BFS row
            # is unchanged (other components stay UNREACHABLE either way).
            rows[i] = index.landmark_rows[previous]
        else:
            stale.append(i)
    if stale:
        recomputed = _bfs_rows(csr, [int(landmark_ids[i]) for i in stale], executor, params)
        for i, row in zip(stale, recomputed):
            rows[i] = row
    return LabelIndex(
        MODE_LANDMARK,
        n,
        csr.generation,
        requested_mode=index.requested_mode,
        landmark_ids=landmark_ids,
        landmark_rows=rows,
    )


def _patch_exact(
    index: LabelIndex, csr: CSRSignedGraph, dirty, budget_bytes
) -> Optional[LabelIndex]:
    np = _np()
    n = csr.number_of_nodes()
    order = hub_order_for(csr)
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[order] = np.arange(n, dtype=np.int64)
    # Clean nodes keep their labels; only the hub *ranks* may have shifted
    # with the degree ordering, so remap old rank -> dense id -> new rank.
    # A clean node's hubs all live in its own (clean) component, and dirty
    # nodes' labels reference only dirty hubs, so the two sets are disjoint.
    old_counts = np.diff(index.label_indptr)
    entry_nodes = np.repeat(np.arange(n, dtype=np.int64), old_counts)
    keep = ~dirty[entry_nodes]
    old_hub_dense = np.asarray(index.hub_order)[np.asarray(index.label_hubs)[keep]]
    clean_nodes = entry_nodes[keep]
    clean_ranks = rank_of[old_hub_dense].astype(np.int32)
    clean_dists = np.asarray(index.label_dists)[keep]
    # Re-run the pruned labelling over the dirty components only.  Relative
    # rank order within a clean component is unchanged by the re-sort (ids
    # and degrees there are untouched), so the remapped labels are exactly
    # what a full rebuild would produce for those nodes.
    dirty_ids = np.flatnonzero(dirty)
    hubs = dirty_ids[np.argsort(rank_of[dirty_ids], kind="stable")]
    built = _pll_labels(csr, hubs, rank_of, budget_bytes)
    if built is None:
        return None
    dirty_indptr, dirty_hubs, dirty_dists = built
    dirty_nodes = np.repeat(np.arange(n, dtype=np.int64), np.diff(dirty_indptr))
    nodes_all = np.concatenate([clean_nodes, dirty_nodes])
    ranks_all = np.concatenate([clean_ranks, dirty_hubs])
    dists_all = np.concatenate([clean_dists, dirty_dists])
    permutation = np.lexsort((ranks_all, nodes_all))
    counts = np.bincount(nodes_all, minlength=n)
    lab_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=lab_indptr[1:])
    merged = LabelIndex(
        MODE_EXACT,
        n,
        csr.generation,
        requested_mode=index.requested_mode,
        hub_order=order,
        label_indptr=lab_indptr,
        label_hubs=np.ascontiguousarray(ranks_all[permutation], dtype=np.int32),
        label_dists=np.ascontiguousarray(dists_all[permutation], dtype=np.uint16),
    )
    if budget_bytes is not None and merged.nbytes > budget_bytes:
        return None
    return merged


def _contribution_diff(np, old_nodes, old_dists, new_nodes, new_dists):
    """Nodes whose entry under one hub differs between old and new labels.

    Both pairs are sorted by node.  Returns the union of nodes present on
    one side only and nodes present on both sides with different distances.
    """
    if old_nodes.shape[0] == 0:
        return new_nodes
    if new_nodes.shape[0] == 0:
        return old_nodes
    pos = np.searchsorted(new_nodes, old_nodes).clip(0, new_nodes.shape[0] - 1)
    matched = new_nodes[pos] == old_nodes
    changed_old = old_nodes[~matched | (new_dists[pos] != old_dists)]
    pos = np.searchsorted(old_nodes, new_nodes).clip(0, old_nodes.shape[0] - 1)
    new_only = new_nodes[old_nodes[pos] != new_nodes]
    if new_only.shape[0] == 0:
        return changed_old
    return np.union1d(changed_old, new_only)


def _resweep_exact(
    index: LabelIndex, csr: CSRSignedGraph, dirty, budget_bytes, stats=None
) -> Optional[LabelIndex]:
    """Affected-hub resweep for graphs where the component sweep is useless.

    On a connected graph every churn event "affects" the whole node set, so
    :func:`_patch_exact`'s clean-component reuse degenerates to a full
    rebuild.  But a small churn batch still leaves most hubs' *pruned BFS
    trees* untouched: a hub's label contribution only depends on the
    adjacency rows of the nodes it labels (``S``), on the earlier-ranked
    labels at ``S`` and its neighbourhood ``N(S)``, and on its own rank
    position.  This pass replays the hub sweep in new-rank order, reusing a
    hub's old contribution verbatim whenever

    * the hub itself and every node it labelled are clean (``dirty``), and
    * no earlier-ranked label at ``S`` or ``N(S)`` changed (``lab_changed``
      plus its one-hop adjacency dilation ``lab_changed_adj``),

    and re-running the standard pruned BFS otherwise.  Re-run hubs are
    diffed against their old contribution and the differing nodes (plus
    neighbours) feed the change masks, so downstream reuse decisions see
    every label perturbation.  Rank crossings need one extra guard: a hub
    ``d`` whose rank moved past ``h`` changes which side of ``h`` its
    entries land on, even where the entry values themselves are unchanged
    (so the re-run diff alone would miss them).  Only dirty hubs can cross
    a clean one — clean keys ``(-degree, id)`` are unchanged, so clean
    relative order is preserved — and both rank permutations are in hand,
    so the crossing test is exact: when some dirty hub crosses ``h``, the
    reuse check additionally consults a mask of every dirty hub's old
    contribution (plus neighbours).

    Returns ``None`` (caller rebuilds) when too many hubs need re-running,
    or past ``budget_bytes``.  Output is bit-identical to a full rebuild.
    """
    np = _np()
    if stats is None:
        stats = {}
    stats.update(reruns=0, reused=0, outcome="swept")
    n = csr.number_of_nodes()
    indptr, indices = csr.indptr, csr.indices
    order = hub_order_for(csr)
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[order] = np.arange(n, dtype=np.int64)

    # Invert the node-major label arrays hub-major: contribution slice per
    # old hub, node-ascending within each hub (stable sort keeps the
    # node-major order).
    entry_nodes = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(index.label_indptr)
    )
    entry_hub = np.asarray(index.hub_order)[np.asarray(index.label_hubs)]
    by_hub = np.argsort(entry_hub, kind="stable")
    contrib_nodes = entry_nodes[by_hub]
    contrib_dists = np.asarray(index.label_dists)[by_hub]
    hub_starts = np.searchsorted(entry_hub[by_hub], np.arange(n + 1, dtype=np.int64))

    def mark(mask, mask_adj, nodes):
        if nodes.shape[0] == 0:
            return
        mask[nodes] = True
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        total = int(counts.sum())
        if total:
            offsets = np.cumsum(counts) - counts
            neighbours = indices[
                np.repeat(starts, counts)
                + np.arange(total, dtype=np.int64)
                - np.repeat(offsets, counts)
            ]
            mask_adj[neighbours] = True

    lab_changed = np.zeros(n, dtype=bool)
    lab_changed_adj = np.zeros(n, dtype=bool)
    # Crossing guard: old/new rank of every dirty hub, plus the union of
    # their old contributions — consulted only for hubs some dirty hub
    # actually crosses.
    old_rank = np.empty(n, dtype=np.int64)
    old_rank[np.asarray(index.hub_order)] = np.arange(n, dtype=np.int64)
    dirty_ids = np.flatnonzero(dirty)
    dirty_old_rank = old_rank[dirty_ids]
    dirty_new_rank = rank_of[dirty_ids]
    crossed_entries = np.zeros(n, dtype=bool)
    crossed_entries_adj = np.zeros(n, dtype=bool)
    mark(
        crossed_entries,
        crossed_entries_adj,
        np.unique(entry_nodes[dirty[entry_hub]]),
    )

    reruns = 0
    rerun_limit = max(_BLOCK, n // 4)
    # Cheap lower bound on the re-runs ahead: every hub labelling a dirty
    # node must re-run (plus the dirty hubs themselves).  Bail before paying
    # for any BFS or merge when that bound already exceeds the budget.
    # (Every hub labels itself, so dirty hubs are already in the bound.)
    if np.unique(entry_hub[dirty[entry_nodes]]).shape[0] > rerun_limit:
        stats["outcome"] = "bailed:dirty-fan-in"
        return None

    lab_indptr = np.zeros(n + 1, dtype=np.int64)
    lab_hubs = np.empty(0, dtype=np.int32)
    lab_dists = np.empty(0, dtype=np.uint16)
    table = np.full(n, _INF, dtype=np.int32)
    visited = np.zeros(n, dtype=bool)
    for block_start in range(0, n, _BLOCK):
        block_hubs = order[block_start : block_start + _BLOCK]
        block_size = len(block_hubs)
        block_ranks = np.asarray(rank_of[block_hubs], dtype=np.int32)
        block = np.full((n, block_size), _INF, dtype=np.int32)
        for j in range(block_size):
            hub = int(block_hubs[j])
            rank = block_start + j
            s, e = int(hub_starts[hub]), int(hub_starts[hub + 1])
            old_nodes = contrib_nodes[s:e]
            old_dists = contrib_dists[s:e].astype(np.int32)
            reusable = (
                not dirty[hub]
                and old_nodes.shape[0]
                and not dirty[old_nodes].any()
                and not lab_changed[old_nodes].any()
                and not lab_changed_adj[old_nodes].any()
            )
            if reusable and bool(
                (
                    (dirty_old_rank < old_rank[hub]) != (dirty_new_rank < rank)
                ).any()
            ):
                reusable = (
                    not crossed_entries[old_nodes].any()
                    and not crossed_entries_adj[old_nodes].any()
                )
            if reusable:
                block[old_nodes, j] = old_dists
                stats["reused"] += 1
                continue
            reruns += 1
            stats["reruns"] = reruns
            if reruns > rerun_limit:
                stats["outcome"] = "bailed:rerun-limit"
                return None
            # Standard pruned BFS, identical to the fresh build's inner loop.
            hub_start, hub_end = int(lab_indptr[hub]), int(lab_indptr[hub + 1])
            hub_label_ranks = lab_hubs[hub_start:hub_end]
            table[hub_label_ranks] = lab_dists[hub_start:hub_end]
            block_cols = np.flatnonzero(block[hub, :j] != _INF)
            block_vals = block[hub, block_cols]
            block[hub, j] = 0
            visited[hub] = True
            touched = [np.asarray([hub], dtype=np.int64)]
            labelled_chunks = [touched[0]]
            frontier = touched[0]
            dist = 0
            while frontier.shape[0]:
                dist += 1
                starts = indptr[frontier]
                counts = indptr[frontier + 1] - starts
                total = int(counts.sum())
                if total == 0:
                    break
                offsets = np.cumsum(counts) - counts
                neighbors = indices[
                    np.repeat(starts, counts)
                    + np.arange(total, dtype=np.int64)
                    - np.repeat(offsets, counts)
                ]
                cand = neighbors[~visited[neighbors]]
                if cand.shape[0] == 0:
                    break
                cand = np.unique(cand).astype(np.int64)
                visited[cand] = True
                touched.append(cand)
                pruned_at = _prune_query(
                    np, cand, lab_indptr, lab_hubs, lab_dists, table, block, block_cols, block_vals
                )
                labelled = cand[pruned_at > dist]
                if labelled.shape[0]:
                    block[labelled, j] = dist
                    labelled_chunks.append(labelled)
                frontier = labelled
            table[hub_label_ranks] = _INF
            for chunk in touched:
                visited[chunk] = False
            new_nodes = np.sort(np.concatenate(labelled_chunks))
            mark(
                lab_changed,
                lab_changed_adj,
                _contribution_diff(
                    np, old_nodes, old_dists, new_nodes, block[new_nodes, j]
                ),
            )
            # A non-local mutation (e.g. a long-range shortcut) perturbs a
            # top hub's distances across much of the graph; with average
            # label sizes in the hundreds, change masks covering even a
            # small fraction of the nodes doom almost every later reuse
            # check, so abort early rather than sweep to the re-run limit.
            if int((dirty | lab_changed | lab_changed_adj).sum()) > max(
                _BLOCK, n // 8
            ):
                stats["outcome"] = "bailed:change-coverage"
                return None
        lab_indptr, lab_hubs, lab_dists = _merge_block(
            np, n, lab_indptr, lab_hubs, lab_dists, block, block_ranks
        )
        if budget_bytes is not None and _label_nbytes(lab_indptr, lab_hubs, lab_dists) > budget_bytes:
            return None
    return LabelIndex(
        MODE_EXACT,
        n,
        csr.generation,
        requested_mode=index.requested_mode,
        hub_order=order,
        label_indptr=lab_indptr,
        label_hubs=lab_hubs,
        label_dists=lab_dists,
    )


def refresh_label_index(
    index: LabelIndex,
    graph: SignedGraph,
    *,
    budget_bytes: Optional[int] = DEFAULT_LABEL_BUDGET_BYTES,
    executor=None,
    params: Optional[dict] = None,
) -> Tuple[LabelIndex, str]:
    """Bring ``index`` up to ``graph``'s current generation.

    Returns ``(index, how)`` with ``how`` one of ``"fresh"`` (nothing to do),
    ``"patched"`` (dirty components re-labelled in place of a full build) or
    ``"rebuilt"``.  The patch path is taken when the churn since the index's
    generation stays within the shared
    :func:`~repro.signed.delta.within_patch_budget` threshold, the node set
    is unchanged, and either the affected-component sweep is conservative or
    (exact mode, connected graphs) the affected-hub resweep stays within its
    re-run bound; patched output is bit-identical to a rebuild.
    """
    _np()
    generation = graph.generation
    if generation == index.generation and graph.number_of_nodes() == index.num_nodes:
        return index, "fresh"
    csr = graph.csr_view()

    def rebuilt() -> Tuple[LabelIndex, str]:
        return (
            build_label_index(
                csr,
                mode=index.requested_mode,
                budget_bytes=budget_bytes,
                executor=executor,
                params=params,
            ),
            "rebuilt",
        )

    # generation bumps exactly once per effective mutation, so the diff is a
    # sound churn-event count even though the graph's own delta log resets on
    # every csr_view().
    events = generation - index.generation
    if (
        events < 0
        or graph.number_of_nodes() != index.num_nodes
        or graph.node_set_changed_since(index.generation)
    ):
        return rebuilt()
    topology_dirty = graph.topology_touched_nodes_since(index.generation)
    if not topology_dirty:
        # Pure sign-flip churn: no distance can have moved (and neither can
        # the degree-ranked hub order), so the label planes are still exact —
        # re-stamp them at the current generation.
        return (
            LabelIndex(
                index.mode,
                index.num_nodes,
                generation,
                requested_mode=index.requested_mode,
                hub_order=index.hub_order,
                label_indptr=index.label_indptr,
                label_hubs=index.label_hubs,
                label_dists=index.label_dists,
                landmark_ids=index.landmark_ids,
                landmark_rows=index.landmark_rows,
            ),
            "patched",
        )
    if not within_patch_budget(events, graph.number_of_edges()):
        return rebuilt()
    affected = graph.affected_nodes_since(index.generation)
    if affected is None:
        # The component sweep found the churn reaches most of the graph —
        # on a connected graph it always does.  Exact mode still salvages
        # the build with the affected-hub resweep: reuse every hub whose
        # pruned BFS provably cannot have changed, re-run the rest.  The
        # dirty seed is the *topology*-touched set — sign flips cannot
        # perturb any BFS tree.
        if index.mode == MODE_EXACT:
            dirty = _dirty_mask(csr, topology_dirty)
            if dirty is not None and dirty.any():
                patched = _resweep_exact(index, csr, dirty, budget_bytes)
                if patched is not None:
                    return patched, "patched"
        return rebuilt()
    dirty = _dirty_mask(csr, affected)
    if dirty is None:
        return rebuilt()
    if not dirty.any():
        return rebuilt()
    if index.mode == MODE_LANDMARK:
        return _patch_landmark(index, csr, dirty, budget_bytes, executor, params), "patched"
    patched = _patch_exact(index, csr, dirty, budget_bytes)
    if patched is None:
        return rebuilt()
    return patched, "patched"
