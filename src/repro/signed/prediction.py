"""Edge-sign prediction in signed networks.

The paper's conclusions name link/sign prediction as a task that compatibility
could be exploited for; this module implements that extension plus the two
classic structural-balance baselines the sign-prediction literature uses
(Leskovec et al., CHI 2010; Chiang et al., CIKM 2011):

* :class:`TriangleVotePredictor` — each common neighbour ``w`` of ``(u, v)``
  votes ``sign(u, w) * sign(w, v)`` (balanced triangle completion); the
  majority wins.
* :class:`ShortestPathSignPredictor` — the majority sign over the shortest
  paths between ``u`` and ``v`` with the queried edge removed (Algorithm 1 of
  the paper run on the punctured graph).
* :class:`CompatibilityPredictor` — positive iff the pair is compatible under
  a configurable compatibility relation on the punctured graph, which is
  exactly "exploiting compatibility for link prediction".

:func:`evaluate_predictor` hides/unhides edges to measure accuracy, so the
extension benchmark can compare the three approaches.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.signed.graph import NEGATIVE, POSITIVE, Node, Sign, SignedGraph
from repro.signed.paths import signed_bfs
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_probability


class SignPredictor(abc.ABC):
    """Predicts the sign of a (missing) edge ``(u, v)`` of a signed graph."""

    name: str = "abstract"

    def __init__(self, graph: SignedGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> SignedGraph:
        """The (training) graph predictions are based on."""
        return self._graph

    @abc.abstractmethod
    def predict(self, u: Node, v: Node) -> Sign:
        """Return the predicted sign (+1 or -1) for the pair ``(u, v)``."""


class AlwaysPositivePredictor(SignPredictor):
    """The majority-class baseline: real signed networks are mostly positive."""

    name = "always-positive"

    def predict(self, u: Node, v: Node) -> Sign:
        return POSITIVE


class TriangleVotePredictor(SignPredictor):
    """Balanced-triangle completion: common neighbours vote with the product of signs."""

    name = "triangle-vote"

    def __init__(self, graph: SignedGraph, default: Sign = POSITIVE) -> None:
        super().__init__(graph)
        self._default = default

    def predict(self, u: Node, v: Node) -> Sign:
        votes = 0
        neighbors_u = dict(self._graph.signed_neighbors(u))
        for w, sign_vw in self._graph.signed_neighbors(v):
            sign_uw = neighbors_u.get(w)
            if sign_uw is None or w == u or w == v:
                continue
            votes += sign_uw * sign_vw
        if votes == 0:
            return self._default
        return POSITIVE if votes > 0 else NEGATIVE


class ShortestPathSignPredictor(SignPredictor):
    """Majority sign of the shortest paths between the endpoints (Algorithm 1)."""

    name = "shortest-path-sign"

    def __init__(self, graph: SignedGraph, default: Sign = POSITIVE) -> None:
        super().__init__(graph)
        self._default = default

    def predict(self, u: Node, v: Node) -> Sign:
        result = signed_bfs(self._graph, u)
        positive, negative = result.counts(v)
        if positive == negative:
            return self._default
        return POSITIVE if positive > negative else NEGATIVE


class CompatibilityPredictor(SignPredictor):
    """Positive iff the endpoints are compatible under a compatibility relation.

    ``relation_factory`` receives the (training) graph and returns a relation —
    typically ``lambda graph: make_relation("SPM", graph)``.  This is the
    "exploit compatibility for link prediction" extension suggested by the
    paper's conclusions.
    """

    name = "compatibility"

    def __init__(
        self,
        graph: SignedGraph,
        relation_factory: Callable[[SignedGraph], "object"],
    ) -> None:
        super().__init__(graph)
        self._relation = relation_factory(graph)
        self.name = f"compatibility-{getattr(self._relation, 'name', 'custom')}"

    def predict(self, u: Node, v: Node) -> Sign:
        return POSITIVE if self._relation.are_compatible(u, v) else NEGATIVE


@dataclass(frozen=True)
class PredictionReport:
    """Accuracy of a sign predictor on a held-out edge sample."""

    predictor: str
    evaluated_edges: int
    correct: int
    true_positive: int
    true_negative: int
    actual_positive: int
    actual_negative: int

    @property
    def accuracy(self) -> float:
        """Overall fraction of correctly predicted signs."""
        if self.evaluated_edges == 0:
            return 0.0
        return self.correct / self.evaluated_edges

    @property
    def positive_recall(self) -> float:
        """Recall on the positive class."""
        if self.actual_positive == 0:
            return 0.0
        return self.true_positive / self.actual_positive

    @property
    def negative_recall(self) -> float:
        """Recall on the negative class (the hard one in skewed networks)."""
        if self.actual_negative == 0:
            return 0.0
        return self.true_negative / self.actual_negative


def evaluate_predictor(
    graph: SignedGraph,
    predictor_factory: Callable[[SignedGraph], SignPredictor],
    test_fraction: float = 0.1,
    max_test_edges: Optional[int] = 500,
    seed: RandomState = None,
) -> PredictionReport:
    """Hide a fraction of edges, train the predictor on the rest, report accuracy.

    The held-out edges are removed from a copy of ``graph`` (the training
    graph), the predictor is built on that copy via ``predictor_factory``, and
    each hidden edge's sign is predicted from its endpoints.
    """
    require_probability(test_fraction, "test_fraction")
    rng = ensure_rng(seed)
    edges = list(graph.edge_triples())
    if not edges:
        raise ValueError("cannot evaluate a predictor on a graph without edges")
    test_size = max(1, int(round(test_fraction * len(edges))))
    if max_test_edges is not None:
        test_size = min(test_size, max_test_edges)
    test_edges = rng.sample(edges, test_size)

    training_graph = graph.copy()
    for u, v, _sign in test_edges:
        training_graph.remove_edge(u, v)

    predictor = predictor_factory(training_graph)
    correct = 0
    true_positive = 0
    true_negative = 0
    actual_positive = 0
    actual_negative = 0
    for u, v, sign in test_edges:
        predicted = predictor.predict(u, v)
        if sign == POSITIVE:
            actual_positive += 1
        else:
            actual_negative += 1
        if predicted == sign:
            correct += 1
            if sign == POSITIVE:
                true_positive += 1
            else:
                true_negative += 1
    return PredictionReport(
        predictor=predictor.name,
        evaluated_edges=len(test_edges),
        correct=correct,
        true_positive=true_positive,
        true_negative=true_negative,
        actual_positive=actual_positive,
        actual_negative=actual_negative,
    )


def compare_predictors(
    graph: SignedGraph,
    factories: Sequence[Callable[[SignedGraph], SignPredictor]],
    test_fraction: float = 0.1,
    max_test_edges: Optional[int] = 500,
    seed: RandomState = None,
) -> List[PredictionReport]:
    """Evaluate several predictor factories on the *same* held-out edge sample."""
    rng = ensure_rng(seed)
    shared_seed = rng.getrandbits(32)
    return [
        evaluate_predictor(
            graph,
            factory,
            test_fraction=test_fraction,
            max_test_edges=max_test_edges,
            seed=shared_seed,
        )
        for factory in factories
    ]
