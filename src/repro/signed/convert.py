"""Conversions between :class:`SignedGraph` and ``networkx``, plus graph transforms.

The library's algorithms run on :class:`~repro.signed.graph.SignedGraph`, but
the synthetic generators borrow topologies from ``networkx`` and the unsigned
team-formation baseline (Table 3 of the paper) needs the two classic
transforms of a signed network into an unsigned one:

* *ignore sign* — keep every edge, drop the labels;
* *delete negative* — keep only the positive edges.
"""

from __future__ import annotations

from typing import Callable, Optional

import networkx as nx

from repro.exceptions import InvalidSignError
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph


def to_networkx(graph: SignedGraph) -> nx.Graph:
    """Convert to an undirected ``networkx.Graph`` with a ``sign`` edge attribute."""
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    for u, v, sign in graph.edge_triples():
        nx_graph.add_edge(u, v, sign=sign)
    return nx_graph


def from_networkx(
    nx_graph: nx.Graph,
    sign_attribute: str = "sign",
    default_sign: Optional[int] = None,
) -> SignedGraph:
    """Convert a ``networkx`` graph whose edges carry a sign attribute.

    Parameters
    ----------
    nx_graph:
        The source graph (must be undirected; directed graphs should be
        converted by the caller, who knows how to reconcile reciprocal signs).
    sign_attribute:
        Name of the edge attribute holding ``+1`` / ``-1``.
    default_sign:
        Sign to use for edges missing the attribute; ``None`` (the default)
        raises :class:`InvalidSignError` for such edges instead.
    """
    if nx_graph.is_directed():
        raise ValueError("from_networkx expects an undirected graph")
    graph = SignedGraph()
    for node in nx_graph.nodes():
        graph.add_node(node)
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue
        sign = data.get(sign_attribute, default_sign)
        if sign not in (POSITIVE, NEGATIVE):
            raise InvalidSignError(sign)
        graph.add_edge(u, v, sign)
    return graph


def unsigned_copy(graph: SignedGraph) -> nx.Graph:
    """The *ignore sign* transform: every edge kept, labels dropped."""
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from((u, v) for u, v, _ in graph.edge_triples())
    return nx_graph


def positive_subgraph(graph: SignedGraph) -> nx.Graph:
    """The *delete negative* transform: only positive edges kept (all nodes retained)."""
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(
        (u, v) for u, v, sign in graph.edge_triples() if sign == POSITIVE
    )
    return nx_graph


def map_nodes(graph: SignedGraph, mapping: Callable[[object], object]) -> SignedGraph:
    """Return a copy of ``graph`` with every node relabelled through ``mapping``."""
    relabelled = SignedGraph()
    for node in graph.nodes():
        relabelled.add_node(mapping(node))
    for u, v, sign in graph.edge_triples():
        relabelled.add_edge(mapping(u), mapping(v), sign)
    return relabelled
