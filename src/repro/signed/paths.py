"""Path algorithms on signed graphs.

This module implements the path machinery the compatibility relations are
built on:

* :func:`signed_bfs` — **Algorithm 1** of the paper: a single BFS from a query
  node that counts, for every other node, the number of *positive* and
  *negative* shortest paths and the shortest-path length.
* :func:`shortest_path_lengths` — plain sign-agnostic BFS distances.
* :func:`shortest_signed_walk_lengths` — shortest positive / negative *walk*
  lengths via a two-layer ("signed double cover") BFS.
* :func:`all_shortest_paths` / :func:`enumerate_simple_paths` — explicit path
  enumeration, used by the exact SBP relation and by tests that cross-check
  the counting BFS.
* :class:`BalancedPathSearch` — exact and heuristic search for positive
  *structurally balanced* paths (the SBP / SBPH relations of the paper).

The exact balanced-path search exploits the fact that an induced subgraph of a
balanced graph is balanced: if the nodes visited so far induce an unbalanced
subgraph, no extension of the path can become balanced, so the prefix can be
pruned.  The search is still worst-case exponential (the paper proves the
prefix property fails for balanced paths, Figure 1(b)), which is why the
heuristic variant exists.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.signed.balance import path_is_balanced
from repro.signed.graph import NEGATIVE, POSITIVE, Node, Sign, SignedGraph

#: Sentinel length for unreachable nodes.
INFINITY = float("inf")


@dataclass
class SignedBFSResult:
    """Output of :func:`signed_bfs` (Algorithm 1).

    Attributes
    ----------
    source:
        The query node the BFS started from.
    positive_counts / negative_counts:
        For every reachable node ``x``, the number of positive / negative
        shortest paths from the source to ``x``.
    lengths:
        Shortest-path length from the source to every reachable node.
    """

    source: Node
    positive_counts: Dict[Node, int]
    negative_counts: Dict[Node, int]
    lengths: Dict[Node, int]

    def length(self, node: Node) -> float:
        """Shortest-path length to ``node`` (``inf`` if unreachable)."""
        return self.lengths.get(node, INFINITY)

    def counts(self, node: Node) -> Tuple[int, int]:
        """Return ``(positive, negative)`` shortest-path counts for ``node``."""
        return (self.positive_counts.get(node, 0), self.negative_counts.get(node, 0))

    def reachable(self, node: Node) -> bool:
        """True iff ``node`` is reachable from the source."""
        return node in self.lengths


def signed_bfs(graph: SignedGraph, source: Node) -> SignedBFSResult:
    """Count positive and negative shortest paths from ``source`` (Algorithm 1).

    A standard BFS processes nodes level by level.  When node ``x`` is reached
    from node ``u`` along a shortest path (``L(x) == L(u) + 1``), the path
    counts of ``u`` are added to those of ``x``: through a positive edge the
    signs are preserved, through a negative edge they are swapped ("the enemy
    of my enemy is my friend").  Every edge is examined at most twice, so the
    complexity is O(|V| + |E|).
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    positive: Dict[Node, int] = {source: 1}
    negative: Dict[Node, int] = {source: 0}
    lengths: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for x, sign in graph.signed_neighbors(u):
            if x not in lengths:
                lengths[x] = lengths[u] + 1
                positive.setdefault(x, 0)
                negative.setdefault(x, 0)
                queue.append(x)
            if lengths[x] == lengths[u] + 1:
                if sign == POSITIVE:
                    positive[x] = positive.get(x, 0) + positive[u]
                    negative[x] = negative.get(x, 0) + negative[u]
                else:
                    negative[x] = negative.get(x, 0) + positive[u]
                    positive[x] = positive.get(x, 0) + negative[u]
    return SignedBFSResult(
        source=source, positive_counts=positive, negative_counts=negative, lengths=lengths
    )


def count_signed_shortest_paths(
    graph: SignedGraph, source: Node, target: Node
) -> Tuple[int, int, float]:
    """Return ``(positive, negative, length)`` shortest-path data for one pair.

    Convenience wrapper around :func:`signed_bfs` for single-pair queries; for
    many targets from the same source, call :func:`signed_bfs` once instead.
    """
    if target not in graph:
        raise NodeNotFoundError(target)
    result = signed_bfs(graph, source)
    pos, neg = result.counts(target)
    return pos, neg, result.length(target)


def shortest_path_lengths(graph: SignedGraph, source: Node) -> Dict[Node, int]:
    """Sign-agnostic BFS distances from ``source`` to every reachable node."""
    if source not in graph:
        raise NodeNotFoundError(source)
    lengths = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for x in graph.neighbors(u):
            if x not in lengths:
                lengths[x] = lengths[u] + 1
                queue.append(x)
    return lengths


def shortest_signed_walk_lengths(
    graph: SignedGraph, source: Node
) -> Tuple[Dict[Node, int], Dict[Node, int]]:
    """Shortest positive and negative *walk* lengths from ``source``.

    Uses a BFS on the signed double cover: each node ``v`` becomes two states
    ``(v, +1)`` and ``(v, -1)`` recording the parity of negative edges used so
    far.  A positive edge keeps the parity, a negative edge flips it.  The
    returned dictionaries map each node to the length of the shortest walk of
    positive (respectively negative) sign, omitting nodes with no such walk.

    Note that a shortest signed *walk* may revisit nodes, so these lengths are
    a lower bound on shortest signed simple-path lengths; for pairs connected
    by a positive shortest path the two coincide.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    distances: Dict[Tuple[Node, Sign], int] = {(source, POSITIVE): 0}
    queue = deque([(source, POSITIVE)])
    while queue:
        node, parity = queue.popleft()
        base = distances[(node, parity)]
        for neighbor, sign in graph.signed_neighbors(node):
            next_parity = parity * sign
            state = (neighbor, next_parity)
            if state not in distances:
                distances[state] = base + 1
                queue.append(state)
    positive_lengths = {
        node: dist for (node, parity), dist in distances.items() if parity == POSITIVE
    }
    negative_lengths = {
        node: dist for (node, parity), dist in distances.items() if parity == NEGATIVE
    }
    return positive_lengths, negative_lengths


def all_shortest_paths(graph: SignedGraph, source: Node, target: Node) -> List[List[Node]]:
    """Enumerate every shortest path between ``source`` and ``target``.

    Returns a list of node sequences (each starting at ``source`` and ending
    at ``target``); the empty list if ``target`` is unreachable.  Used by the
    tests to validate the counting BFS and by the exact SP relations on tiny
    graphs.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    if source == target:
        return [[source]]
    lengths = shortest_path_lengths(graph, source)
    if target not in lengths:
        return []
    # Predecessor DAG restricted to shortest paths.
    predecessors: Dict[Node, List[Node]] = {}
    for node, dist in lengths.items():
        for neighbor in graph.neighbors(node):
            if lengths.get(neighbor, INFINITY) == dist - 1:
                predecessors.setdefault(node, []).append(neighbor)
    paths: List[List[Node]] = []
    stack: List[Node] = [target]

    def backtrack(node: Node) -> None:
        if node == source:
            paths.append(list(reversed(stack)))
            return
        for pred in predecessors.get(node, []):
            stack.append(pred)
            backtrack(pred)
            stack.pop()

    backtrack(target)
    return paths


def enumerate_simple_paths(
    graph: SignedGraph,
    source: Node,
    target: Node,
    max_length: Optional[int] = None,
) -> Iterator[List[Node]]:
    """Yield every simple path from ``source`` to ``target`` up to ``max_length`` edges.

    Paths are produced in non-decreasing order of length.  ``max_length`` of
    ``None`` means no bound (use with care — the number of simple paths grows
    exponentially).
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    bound = max_length if max_length is not None else graph.number_of_nodes()
    if bound < 0:
        raise ValueError(f"max_length must be non-negative, got {max_length}")
    queue: deque = deque()
    queue.append([source])
    while queue:
        path = queue.popleft()
        last = path[-1]
        if last == target and len(path) > 1 or (last == target and source == target):
            yield path
            continue
        if len(path) - 1 >= bound:
            continue
        on_path = set(path)
        for neighbor in graph.neighbors(last):
            if neighbor in on_path:
                continue
            queue.append(path + [neighbor])


def _extend_camps(
    graph: SignedGraph,
    path: Sequence[Node],
    camps: Dict[Node, int],
    new_node: Node,
) -> Optional[Dict[Node, int]]:
    """Try to extend a balanced path by one node, keeping its two-colouring.

    ``camps`` is the unique (up to flip) Harary two-colouring of the subgraph
    induced by ``path`` — which is balanced and connected, so the colouring is
    well defined.  The extended node set is balanced iff every edge from
    ``new_node`` back into the path agrees on a single camp for ``new_node``.
    Returns the extended colouring, or ``None`` if the extension is unbalanced.

    This is an O(degree) incremental equivalent of re-running
    :func:`repro.signed.balance.induced_subgraph_is_balanced` on the extended
    node set.
    """
    required: Optional[int] = None
    on_path = camps
    for neighbor, sign in graph.signed_neighbors(new_node):
        camp = on_path.get(neighbor)
        if camp is None:
            continue
        expected = camp if sign == POSITIVE else 1 - camp
        if required is None:
            required = expected
        elif required != expected:
            return None
    if required is None:
        # No edge back into the path: cannot happen for path extensions (the
        # path edge itself links new_node to the last node), but keep the
        # function total for defensive callers.
        required = 0
    extended = dict(camps)
    extended[new_node] = required
    return extended


@dataclass
class BalancedPathResult:
    """Per-target outcome of a balanced-path search from a fixed source.

    ``positive_lengths`` / ``negative_lengths`` hold, for each reached node,
    the length of the shortest structurally balanced path of that sign found
    by the search.  For the exact search these are true minima (within the
    configured length cap); for the heuristic search they are upper bounds.
    """

    source: Node
    positive_lengths: Dict[Node, int] = field(default_factory=dict)
    negative_lengths: Dict[Node, int] = field(default_factory=dict)
    exact: bool = True
    max_length: Optional[int] = None
    truncated: bool = False

    def has_positive_path(self, node: Node) -> bool:
        """True iff a positive structurally balanced path to ``node`` was found."""
        return node in self.positive_lengths

    def positive_length(self, node: Node) -> float:
        """Length of the best positive balanced path found (``inf`` if none)."""
        return self.positive_lengths.get(node, INFINITY)


class BalancedPathSearch:
    """Search for positive structurally balanced paths from a source node.

    Two modes are provided, matching the paper:

    * :meth:`search_exact` — exhaustive enumeration of structurally balanced
      simple paths (with pruning of unbalanced prefixes, which is sound
      because balance is hereditary under induced subgraphs).  Worst-case
      exponential; intended for small graphs, like the paper's use of SBP on
      Slashdot only.
    * :meth:`search_heuristic` — the SBPH heuristic: only paths that satisfy
      the *prefix property* are extended, i.e. for every (node, sign) state the
      search keeps a single representative shortest balanced path and extends
      only that one.  Linear in practice, but may miss balanced paths whose
      prefixes are not themselves the recorded representatives (Figure 1(b)).

    Parameters
    ----------
    graph:
        The signed graph to search.
    max_length:
        Maximum number of edges in a path; ``None`` uses ``|V| - 1``.
    max_expansions:
        Safety cap on the number of path extensions performed by the exact
        search; when hit, the result is flagged ``truncated=True``.
    """

    def __init__(
        self,
        graph: SignedGraph,
        max_length: Optional[int] = None,
        max_expansions: int = 2_000_000,
    ) -> None:
        if max_length is not None and max_length < 0:
            raise ValueError(f"max_length must be non-negative, got {max_length}")
        if max_expansions <= 0:
            raise ValueError(f"max_expansions must be positive, got {max_expansions}")
        self._graph = graph
        self._max_length = max_length
        self._max_expansions = max_expansions

    def search_exact(self, source: Node, target: Optional[Node] = None) -> BalancedPathResult:
        """Exhaustively search balanced paths from ``source``.

        When ``target`` is given the search stops as soon as a positive
        balanced path to ``target`` has been found (the BFS order guarantees it
        is a shortest one); otherwise the whole graph is explored.
        """
        graph = self._graph
        if source not in graph:
            raise NodeNotFoundError(source)
        bound = self._max_length if self._max_length is not None else graph.number_of_nodes() - 1
        result = BalancedPathResult(source=source, exact=True, max_length=bound)
        result.positive_lengths[source] = 0
        queue: deque = deque()
        queue.append(([source], {source: 0}))
        expansions = 0
        while queue:
            path, camps = queue.popleft()
            if len(path) - 1 >= bound:
                continue
            last = path[-1]
            for neighbor, _edge_sign in graph.signed_neighbors(last):
                if neighbor in camps:
                    continue
                expansions += 1
                if expansions > self._max_expansions:
                    result.truncated = True
                    return result
                extended = _extend_camps(graph, path, camps, neighbor)
                if extended is None:
                    # Balance is hereditary: no extension of an unbalanced
                    # node set can become balanced, so prune.
                    continue
                new_path = path + [neighbor]
                # The path sign equals +1 iff the new node falls in the
                # source's camp (negative edges flip camps along the path).
                new_sign = POSITIVE if extended[neighbor] == extended[source] else NEGATIVE
                lengths = (
                    result.positive_lengths if new_sign == POSITIVE else result.negative_lengths
                )
                new_len = len(new_path) - 1
                if neighbor not in lengths:
                    lengths[neighbor] = new_len
                    if target is not None and neighbor == target and new_sign == POSITIVE:
                        return result
                # Keep extending even on repeat visits: longer or equal-length
                # balanced paths through this node may reach other nodes that
                # the first path cannot (no prefix property).
                queue.append((new_path, extended))
        return result

    def search_heuristic(self, source: Node) -> BalancedPathResult:
        """SBPH: extend only one representative balanced path per (node, sign).

        A BFS over ``(node, sign)`` states stores the first (hence shortest)
        balanced path that reaches each state and extends only that stored
        path.  This enforces the prefix property the exact relation lacks and
        therefore under-approximates the exact SBP relation.
        """
        graph = self._graph
        if source not in graph:
            raise NodeNotFoundError(source)
        bound = self._max_length if self._max_length is not None else graph.number_of_nodes() - 1
        result = BalancedPathResult(source=source, exact=False, max_length=bound)
        result.positive_lengths[source] = 0
        representative: Dict[Tuple[Node, Sign], Tuple[List[Node], Dict[Node, int]]] = {
            (source, POSITIVE): ([source], {source: 0})
        }
        queue: deque = deque([(source, POSITIVE)])
        while queue:
            node, sign = queue.popleft()
            path, camps = representative[(node, sign)]
            if len(path) - 1 >= bound:
                continue
            for neighbor, edge_sign in graph.signed_neighbors(node):
                if neighbor in camps:
                    continue
                new_sign = sign * edge_sign
                state = (neighbor, new_sign)
                if state in representative:
                    continue
                extended = _extend_camps(graph, path, camps, neighbor)
                if extended is None:
                    continue
                representative[state] = (path + [neighbor], extended)
                lengths = (
                    result.positive_lengths if new_sign == POSITIVE else result.negative_lengths
                )
                lengths.setdefault(neighbor, len(path))
                queue.append(state)
        return result

    def search_heuristic_indexed(self, source: Node) -> BalancedPathResult:
        """SBPH search on the CSR backend (requires numpy).

        Runs :func:`repro.signed.csr.balanced_heuristic_search_csr` on the
        graph's cached CSR view.  The result is bit-identical to
        :meth:`search_heuristic`; only the traversal machinery differs
        (vectorised frontier expansion instead of per-edge Python).
        """
        from repro.signed.csr import balanced_heuristic_search_csr

        return balanced_heuristic_search_csr(
            self._graph.csr_view(), source, max_length=self._max_length
        )


def shortest_balanced_positive_path(
    graph: SignedGraph,
    source: Node,
    target: Node,
    max_length: Optional[int] = None,
) -> Optional[List[Node]]:
    """Return a shortest positive structurally balanced path, or ``None``.

    Performs a breadth-first search over balanced simple paths (pruning
    unbalanced prefixes) and returns the first positive path that reaches
    ``target``; BFS order guarantees minimality.  Intended for small graphs
    and for validating the :class:`BalancedPathSearch` results in tests.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    bound = max_length if max_length is not None else graph.number_of_nodes() - 1
    queue: deque = deque()
    queue.append(([source], {source: 0}))
    while queue:
        path, camps = queue.popleft()
        if len(path) - 1 >= bound:
            continue
        last = path[-1]
        for neighbor, _edge_sign in graph.signed_neighbors(last):
            if neighbor in camps:
                continue
            extended = _extend_camps(graph, path, camps, neighbor)
            if extended is None:
                continue
            new_path = path + [neighbor]
            if neighbor == target and extended[neighbor] == extended[source]:
                return new_path
            queue.append((new_path, extended))
    return None
