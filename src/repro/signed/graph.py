"""The :class:`SignedGraph` data structure.

The paper works with an undirected *signed* graph ``G = (V, E)`` where every
edge carries a label in ``{+1, -1}`` ("friend" / "foe").  The class below
stores the graph as an adjacency dictionary ``{node: {neighbor: sign}}`` which
gives O(1) edge/sign lookups and cheap iteration over signed neighbourhoods —
the access pattern every algorithm in this library relies on.

Nodes can be any hashable object (the synthetic datasets use integers, the
SNAP loaders use the original string ids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import (
    EdgeNotFoundError,
    InvalidSignError,
    NodeNotFoundError,
)
from repro.signed.delta import (
    DELTA_REBUILD_FRACTION,
    MIN_DELTA_EVENTS,
    GraphDelta,
    within_patch_budget,
)

Node = Hashable
Sign = int

#: Entries kept in the per-graph memo of ``affected_nodes_since`` results.
_AFFECTED_MEMO_BOUND = 8

#: Sign constant for a "friend" edge.
POSITIVE: Sign = 1
#: Sign constant for a "foe" edge.
NEGATIVE: Sign = -1

_VALID_SIGNS = (POSITIVE, NEGATIVE)


@dataclass(frozen=True)
class SignedEdge:
    """An undirected signed edge ``(u, v, sign)``.

    Two :class:`SignedEdge` instances compare equal iff they join the same pair
    of nodes (in either order) with the same sign.
    """

    u: Node
    v: Node
    sign: Sign

    def __post_init__(self) -> None:
        if self.sign not in _VALID_SIGNS:
            raise InvalidSignError(self.sign)

    def endpoints(self) -> Tuple[Node, Node]:
        """Return the two endpoints as a tuple ``(u, v)``."""
        return (self.u, self.v)

    def other(self, node: Node) -> Node:
        """Return the endpoint different from ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise NodeNotFoundError(node)

    def is_positive(self) -> bool:
        """True iff the edge is a friend edge."""
        return self.sign == POSITIVE

    def is_negative(self) -> bool:
        """True iff the edge is a foe edge."""
        return self.sign == NEGATIVE

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedEdge):
            return NotImplemented
        same_pair = {self.u, self.v} == {other.u, other.v}
        return same_pair and self.sign == other.sign

    def __hash__(self) -> int:
        return hash((frozenset((self.u, self.v)), self.sign))


class SignedGraph:
    """An undirected graph whose edges are labelled ``+1`` (friend) or ``-1`` (foe).

    The class supports incremental construction (:meth:`add_node`,
    :meth:`add_edge`), bulk construction (:meth:`from_edges`), sign queries
    (:meth:`sign`), and iteration over nodes, edges and signed neighbourhoods.

    Example
    -------
    >>> graph = SignedGraph.from_edges([(0, 1, +1), (1, 2, -1)])
    >>> graph.sign(0, 1)
    1
    >>> sorted(graph.neighbors(1))
    [0, 2]
    >>> graph.number_of_edges()
    2
    """

    #: Backend hint read by the shortest-path ``_use_csr`` selectors.  The
    #: dict-built graph expresses no preference (auto-probing applies);
    #: :class:`repro.signed.lazy.CSRBackedSignedGraph` overrides this so a
    #: CSR-first graph is never dict-probed (which would materialise it).
    prefers_csr = False

    def __init__(self) -> None:
        self._adjacency: Dict[Node, Dict[Node, Sign]] = {}
        self._num_edges = 0
        self._num_positive = 0
        #: Monotonically increasing snapshot stamp, bumped on every *effective*
        #: mutation (no-op writes never bump it).  The CSR view and every
        #: generation-keyed cache downstream key their validity on it.
        self._generation = 0
        self._csr_cache: Optional[Tuple[int, object]] = None
        #: Structured mutation log since the last CSR snapshot; ``None`` until
        #: the first snapshot exists (nothing to patch before that).
        self._delta: Optional[GraphDelta] = None
        #: node -> generation at which it was last touched by a mutation.
        #: Feeds :meth:`affected_nodes_since` (targeted cache invalidation).
        self._touched: Dict[Node, int] = {}
        #: Subset of :attr:`_touched` bookkeeping for *topology* mutations
        #: (edge/node additions and removals).  Sign flips are excluded: they
        #: bump the generation but cannot move distances, so distance-only
        #: consumers (the label index) key their dirty sets on this map.
        self._touched_topology: Dict[Node, int] = {}
        #: Generation of the last node addition/removal (node-set validity).
        self._node_set_generation = 0
        #: from-generation -> affected set (or None = everything), memoised for
        #: the *current* generation so the many generation-keyed caches that
        #: sync from the same point share one component sweep.
        self._affected_memo: Dict[int, Optional[FrozenSet[Node]]] = {}

    @property
    def generation(self) -> int:
        """The current mutation generation (monotonic; no-ops never bump it)."""
        return self._generation

    @property
    def _mutations(self) -> int:
        """Backward-compatible alias for :attr:`generation`."""
        return self._generation

    def _record_mutation(self, *nodes: Node, topology: bool = True) -> None:
        """Bump the generation and mark ``nodes`` as touched by it.

        ``topology=False`` (sign flips) skips the topology-dirty map — the
        mutation invalidates sign-dependent caches but not distances.
        """
        self._generation += 1
        for node in nodes:
            self._touched[node] = self._generation
            if topology:
                self._touched_topology[node] = self._generation
        if self._affected_memo:
            self._affected_memo.clear()

    def touched_nodes_since(self, generation: int) -> FrozenSet[Node]:
        """The nodes some mutation after ``generation`` directly touched.

        Unlike :meth:`affected_nodes_since` this does *not* expand to
        connected components — it is the raw dirty set, the seed the label
        index's affected-hub resweep works outward from on connected graphs
        (where the component expansion always degenerates to "everything").
        """
        if generation >= self._generation:
            return frozenset()
        return frozenset(
            node for node, gen in self._touched.items() if gen > generation
        )

    def topology_touched_nodes_since(self, generation: int) -> FrozenSet[Node]:
        """Like :meth:`touched_nodes_since`, but edge/node mutations only.

        Sign flips never appear here: they cannot change any distance, so a
        refresh whose churn window contains nothing else can keep a distance
        index's arrays untouched.
        """
        if generation >= self._generation:
            return frozenset()
        return frozenset(
            node
            for node, gen in self._touched_topology.items()
            if gen > generation
        )

    def node_set_changed_since(self, generation: int) -> bool:
        """True iff a node was added or removed after ``generation``.

        Consumers whose per-source results depend on the *whole node set*
        (e.g. the NNE relation's complement-style compatible sets) use this to
        fall back to wholesale invalidation when component-conservative
        invalidation would be unsound.
        """
        return self._node_set_generation > generation

    # ------------------------------------------------------------------ build

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Node, Node, Sign]],
        nodes: Optional[Iterable[Node]] = None,
    ) -> "SignedGraph":
        """Build a graph from ``(u, v, sign)`` triples (plus optional isolated nodes)."""
        graph = cls()
        if nodes is not None:
            for node in nodes:
                graph.add_node(node)
        for u, v, sign in edges:
            graph.add_edge(u, v, sign)
        return graph

    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph; adding an existing node is a no-op."""
        if node not in self._adjacency:
            self._adjacency[node] = {}
            self._record_mutation(node)
            self._node_set_generation = self._generation
            if self._delta is not None:
                self._delta.record_node_added(node)

    def add_edge(self, u: Node, v: Node, sign: Sign) -> None:
        """Add the undirected signed edge ``(u, v, sign)``.

        Endpoints are added automatically.  Re-adding an existing edge with the
        same sign is a no-op; re-adding it with the opposite sign raises
        :class:`ValueError` (a signed graph cannot hold parallel edges of
        conflicting sign — callers that need to *change* a sign should use
        :meth:`set_sign`).
        """
        if sign not in _VALID_SIGNS:
            raise InvalidSignError(sign)
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        existing = self._adjacency[u].get(v)
        if existing is not None:
            if existing != sign:
                raise ValueError(
                    f"edge ({u!r}, {v!r}) already exists with sign {existing}; "
                    "use set_sign() to change it"
                )
            return
        self._adjacency[u][v] = sign
        self._adjacency[v][u] = sign
        self._num_edges += 1
        self._record_mutation(u, v)
        if self._delta is not None:
            self._delta.record_edge_added(u, v, sign)
        if sign == POSITIVE:
            self._num_positive += 1

    def set_sign(self, u: Node, v: Node, sign: Sign) -> None:
        """Change the sign of an existing edge ``(u, v)`` to ``sign``.

        Writing the sign the edge already has is a true no-op: the generation
        is not bumped, so the CSR view and every downstream cache stay valid.
        """
        if sign not in _VALID_SIGNS:
            raise InvalidSignError(sign)
        current = self.sign(u, v)
        if current == sign:
            return
        self._adjacency[u][v] = sign
        self._adjacency[v][u] = sign
        self._record_mutation(u, v, topology=False)
        if self._delta is not None:
            self._delta.record_sign_changed(u, v, sign)
        if sign == POSITIVE:
            self._num_positive += 1
        else:
            self._num_positive -= 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``(u, v)``; raises :class:`EdgeNotFoundError` if absent."""
        sign = self.sign(u, v)
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._num_edges -= 1
        self._record_mutation(u, v)
        if self._delta is not None:
            self._delta.record_edge_removed(u, v)
        if sign == POSITIVE:
            self._num_positive -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adjacency[node]):
            self.remove_edge(node, neighbor)
        del self._adjacency[node]
        self._record_mutation(node)
        self._node_set_generation = self._generation
        if self._delta is not None:
            self._delta.record_node_removed(node)

    # ------------------------------------------------------------------ query

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adjacency)

    def has_node(self, node: Node) -> bool:
        """True iff ``node`` is in the graph."""
        return node in self._adjacency

    def has_edge(self, u: Node, v: Node) -> bool:
        """True iff the undirected edge ``(u, v)`` is in the graph."""
        return u in self._adjacency and v in self._adjacency[u]

    def sign(self, u: Node, v: Node) -> Sign:
        """Return the sign of edge ``(u, v)``; raises if the edge is absent."""
        if u not in self._adjacency:
            raise NodeNotFoundError(u)
        if v not in self._adjacency:
            raise NodeNotFoundError(v)
        try:
            return self._adjacency[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def nodes(self) -> List[Node]:
        """Return a list of all nodes."""
        return list(self._adjacency)

    def edges(self) -> Iterator[SignedEdge]:
        """Iterate over every edge exactly once as a :class:`SignedEdge`."""
        seen = set()
        for u, neighborhood in self._adjacency.items():
            for v, sign in neighborhood.items():
                key = frozenset((u, v))
                if key in seen:
                    continue
                seen.add(key)
                yield SignedEdge(u, v, sign)

    def edge_triples(self) -> Iterator[Tuple[Node, Node, Sign]]:
        """Iterate over every edge exactly once as a ``(u, v, sign)`` tuple."""
        for edge in self.edges():
            yield (edge.u, edge.v, edge.sign)

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbours of ``node``."""
        try:
            return iter(self._adjacency[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def signed_neighbors(self, node: Node) -> Iterator[Tuple[Node, Sign]]:
        """Iterate over ``(neighbor, sign)`` pairs for ``node``."""
        try:
            return iter(self._adjacency[node].items())
        except KeyError:
            raise NodeNotFoundError(node) from None

    def positive_neighbors(self, node: Node) -> List[Node]:
        """Return the neighbours joined to ``node`` by a positive edge."""
        return [v for v, s in self.signed_neighbors(node) if s == POSITIVE]

    def negative_neighbors(self, node: Node) -> List[Node]:
        """Return the neighbours joined to ``node`` by a negative edge."""
        return [v for v, s in self.signed_neighbors(node) if s == NEGATIVE]

    def degree(self, node: Node) -> int:
        """Return the number of edges incident to ``node``."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        return len(self._adjacency[node])

    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self._adjacency)

    def number_of_edges(self) -> int:
        """Return ``|E|``."""
        return self._num_edges

    def number_of_positive_edges(self) -> int:
        """Return the number of friend edges."""
        return self._num_positive

    def number_of_negative_edges(self) -> int:
        """Return the number of foe edges."""
        return self._num_edges - self._num_positive

    # ------------------------------------------------------------- transforms

    def csr_view(self):
        """Return the indexed CSR snapshot of this graph (cached per generation).

        The view (:class:`~repro.signed.csr.CSRSignedGraph`) maps nodes to
        dense integer ids and stores adjacency as flat offset/neighbour/sign
        arrays — the backend the batched BFS algorithms run on.  Holding on to
        a stale view is safe (it is a snapshot); new queries through this
        method always reflect the current graph.

        Snapshots are **delta-maintained**: mutations since the last snapshot
        are kept in a structured :class:`~repro.signed.delta.GraphDelta`, and
        small batches (up to :data:`DELTA_REBUILD_FRACTION` of the edges)
        patch the previous snapshot's arrays
        (:meth:`~repro.signed.csr.CSRSignedGraph.apply_delta`) instead of
        rebuilding from scratch — bit-identical to a full rebuild, asserted by
        the dynamic-graph equivalence suite.  Each snapshot carries the
        :attr:`generation` it was taken at.
        """
        from repro.signed.csr import CSRSignedGraph

        cached = self._csr_cache
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        old_view = cached[1] if cached is not None else None
        delta = self._delta
        view = None
        if (
            old_view is not None
            and delta is not None
            and delta
            and not delta.overflowed
            and within_patch_budget(len(delta), self._num_edges)
        ):
            view = CSRSignedGraph.apply_delta(old_view, self, delta)
        if view is None:
            view = CSRSignedGraph.from_signed_graph(self)
            if old_view is not None and old_view._nodes == view._nodes:
                # Same node set as the previous snapshot: share the node-list
                # and index *identity* so per-source results that survived
                # targeted cache invalidation stay dense-id compatible with
                # the new snapshot (see CSRSignedGraph.shares_index_with).
                view._nodes = old_view._nodes
                view._index = old_view._index
        self._csr_cache = (self._generation, view)
        self._delta = GraphDelta()
        return view

    def affected_nodes_since(self, generation: int) -> Optional[FrozenSet[Node]]:
        """Nodes whose per-source results may have changed since ``generation``.

        The set is conservative by connected component of the *current* graph:
        a BFS/search result rooted at ``s`` can only change when a mutation
        touches a node in ``s``'s component (edge removals keep every affected
        source connected to a touched endpoint; node removals keep them
        connected to a touched neighbour), so the union of components
        containing a touched node — plus touched nodes no longer present —
        covers every stale entry.  Returns ``None`` when most of the graph is
        affected (callers should drop everything), and the empty set when
        ``generation`` is current.  Results are memoised per ``generation``
        until the next mutation, so the many generation-keyed caches syncing
        from the same point share one sweep.
        """
        if generation >= self._generation:
            return frozenset()
        if generation in self._affected_memo:
            return self._affected_memo[generation]
        seeds = [node for node, gen in self._touched.items() if gen > generation]
        num_nodes = len(self._adjacency)
        result: Optional[FrozenSet[Node]]
        if 2 * len(seeds) >= num_nodes:
            result = None
        else:
            affected = set(seeds)
            stack = [seed for seed in seeds if seed in self._adjacency]
            adjacency = self._adjacency
            while stack:
                node = stack.pop()
                for neighbor in adjacency[node]:
                    if neighbor not in affected:
                        affected.add(neighbor)
                        stack.append(neighbor)
            result = None if 2 * len(affected) >= num_nodes else frozenset(affected)
        if len(self._affected_memo) >= _AFFECTED_MEMO_BOUND:
            self._affected_memo.clear()
        self._affected_memo[generation] = result
        return result

    def copy(self) -> "SignedGraph":
        """Return an independent copy of the graph."""
        clone = SignedGraph()
        clone._adjacency = {u: dict(nbrs) for u, nbrs in self._adjacency.items()}
        clone._num_edges = self._num_edges
        clone._num_positive = self._num_positive
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "SignedGraph":
        """Return the subgraph induced by ``nodes`` (missing nodes raise)."""
        node_set = set(nodes)
        missing = [n for n in node_set if n not in self._adjacency]
        if missing:
            raise NodeNotFoundError(missing[0])
        sub = SignedGraph()
        for node in node_set:
            sub.add_node(node)
        for node in node_set:
            for neighbor, sign in self._adjacency[node].items():
                if neighbor in node_set and not sub.has_edge(node, neighbor):
                    sub.add_edge(node, neighbor, sign)
        return sub

    def path_sign(self, path: List[Node]) -> Sign:
        """Return the sign of ``path`` — the product of its edge signs.

        ``path`` is a list of nodes; every consecutive pair must be an edge.
        A single-node path has sign ``+1`` (empty product).
        """
        sign = POSITIVE
        for u, v in zip(path, path[1:]):
            sign *= self.sign(u, v)
        return sign

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedGraph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __repr__(self) -> str:
        return (
            f"SignedGraph(nodes={self.number_of_nodes()}, edges={self.number_of_edges()}, "
            f"negative={self.number_of_negative_edges()})"
        )
