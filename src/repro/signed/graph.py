"""The :class:`SignedGraph` data structure.

The paper works with an undirected *signed* graph ``G = (V, E)`` where every
edge carries a label in ``{+1, -1}`` ("friend" / "foe").  The class below
stores the graph as an adjacency dictionary ``{node: {neighbor: sign}}`` which
gives O(1) edge/sign lookups and cheap iteration over signed neighbourhoods —
the access pattern every algorithm in this library relies on.

Nodes can be any hashable object (the synthetic datasets use integers, the
SNAP loaders use the original string ids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import (
    EdgeNotFoundError,
    InvalidSignError,
    NodeNotFoundError,
)

Node = Hashable
Sign = int

#: Sign constant for a "friend" edge.
POSITIVE: Sign = 1
#: Sign constant for a "foe" edge.
NEGATIVE: Sign = -1

_VALID_SIGNS = (POSITIVE, NEGATIVE)


@dataclass(frozen=True)
class SignedEdge:
    """An undirected signed edge ``(u, v, sign)``.

    Two :class:`SignedEdge` instances compare equal iff they join the same pair
    of nodes (in either order) with the same sign.
    """

    u: Node
    v: Node
    sign: Sign

    def __post_init__(self) -> None:
        if self.sign not in _VALID_SIGNS:
            raise InvalidSignError(self.sign)

    def endpoints(self) -> Tuple[Node, Node]:
        """Return the two endpoints as a tuple ``(u, v)``."""
        return (self.u, self.v)

    def other(self, node: Node) -> Node:
        """Return the endpoint different from ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise NodeNotFoundError(node)

    def is_positive(self) -> bool:
        """True iff the edge is a friend edge."""
        return self.sign == POSITIVE

    def is_negative(self) -> bool:
        """True iff the edge is a foe edge."""
        return self.sign == NEGATIVE

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedEdge):
            return NotImplemented
        same_pair = {self.u, self.v} == {other.u, other.v}
        return same_pair and self.sign == other.sign

    def __hash__(self) -> int:
        return hash((frozenset((self.u, self.v)), self.sign))


class SignedGraph:
    """An undirected graph whose edges are labelled ``+1`` (friend) or ``-1`` (foe).

    The class supports incremental construction (:meth:`add_node`,
    :meth:`add_edge`), bulk construction (:meth:`from_edges`), sign queries
    (:meth:`sign`), and iteration over nodes, edges and signed neighbourhoods.

    Example
    -------
    >>> graph = SignedGraph.from_edges([(0, 1, +1), (1, 2, -1)])
    >>> graph.sign(0, 1)
    1
    >>> sorted(graph.neighbors(1))
    [0, 2]
    >>> graph.number_of_edges()
    2
    """

    def __init__(self) -> None:
        self._adjacency: Dict[Node, Dict[Node, Sign]] = {}
        self._num_edges = 0
        self._num_positive = 0
        #: Bumped on every mutation; used to invalidate the cached CSR view.
        self._mutations = 0
        self._csr_cache: Optional[Tuple[int, object]] = None

    # ------------------------------------------------------------------ build

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Node, Node, Sign]],
        nodes: Optional[Iterable[Node]] = None,
    ) -> "SignedGraph":
        """Build a graph from ``(u, v, sign)`` triples (plus optional isolated nodes)."""
        graph = cls()
        if nodes is not None:
            for node in nodes:
                graph.add_node(node)
        for u, v, sign in edges:
            graph.add_edge(u, v, sign)
        return graph

    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph; adding an existing node is a no-op."""
        if node not in self._adjacency:
            self._adjacency[node] = {}
            self._mutations += 1

    def add_edge(self, u: Node, v: Node, sign: Sign) -> None:
        """Add the undirected signed edge ``(u, v, sign)``.

        Endpoints are added automatically.  Re-adding an existing edge with the
        same sign is a no-op; re-adding it with the opposite sign raises
        :class:`ValueError` (a signed graph cannot hold parallel edges of
        conflicting sign — callers that need to *change* a sign should use
        :meth:`set_sign`).
        """
        if sign not in _VALID_SIGNS:
            raise InvalidSignError(sign)
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        existing = self._adjacency[u].get(v)
        if existing is not None:
            if existing != sign:
                raise ValueError(
                    f"edge ({u!r}, {v!r}) already exists with sign {existing}; "
                    "use set_sign() to change it"
                )
            return
        self._adjacency[u][v] = sign
        self._adjacency[v][u] = sign
        self._num_edges += 1
        self._mutations += 1
        if sign == POSITIVE:
            self._num_positive += 1

    def set_sign(self, u: Node, v: Node, sign: Sign) -> None:
        """Change the sign of an existing edge ``(u, v)`` to ``sign``."""
        if sign not in _VALID_SIGNS:
            raise InvalidSignError(sign)
        current = self.sign(u, v)
        if current == sign:
            return
        self._adjacency[u][v] = sign
        self._adjacency[v][u] = sign
        self._mutations += 1
        if sign == POSITIVE:
            self._num_positive += 1
        else:
            self._num_positive -= 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``(u, v)``; raises :class:`EdgeNotFoundError` if absent."""
        sign = self.sign(u, v)
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._num_edges -= 1
        self._mutations += 1
        if sign == POSITIVE:
            self._num_positive -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adjacency[node]):
            self.remove_edge(node, neighbor)
        del self._adjacency[node]
        self._mutations += 1

    # ------------------------------------------------------------------ query

    def __contains__(self, node: Node) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adjacency)

    def has_node(self, node: Node) -> bool:
        """True iff ``node`` is in the graph."""
        return node in self._adjacency

    def has_edge(self, u: Node, v: Node) -> bool:
        """True iff the undirected edge ``(u, v)`` is in the graph."""
        return u in self._adjacency and v in self._adjacency[u]

    def sign(self, u: Node, v: Node) -> Sign:
        """Return the sign of edge ``(u, v)``; raises if the edge is absent."""
        if u not in self._adjacency:
            raise NodeNotFoundError(u)
        if v not in self._adjacency:
            raise NodeNotFoundError(v)
        try:
            return self._adjacency[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def nodes(self) -> List[Node]:
        """Return a list of all nodes."""
        return list(self._adjacency)

    def edges(self) -> Iterator[SignedEdge]:
        """Iterate over every edge exactly once as a :class:`SignedEdge`."""
        seen = set()
        for u, neighborhood in self._adjacency.items():
            for v, sign in neighborhood.items():
                key = frozenset((u, v))
                if key in seen:
                    continue
                seen.add(key)
                yield SignedEdge(u, v, sign)

    def edge_triples(self) -> Iterator[Tuple[Node, Node, Sign]]:
        """Iterate over every edge exactly once as a ``(u, v, sign)`` tuple."""
        for edge in self.edges():
            yield (edge.u, edge.v, edge.sign)

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbours of ``node``."""
        try:
            return iter(self._adjacency[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def signed_neighbors(self, node: Node) -> Iterator[Tuple[Node, Sign]]:
        """Iterate over ``(neighbor, sign)`` pairs for ``node``."""
        try:
            return iter(self._adjacency[node].items())
        except KeyError:
            raise NodeNotFoundError(node) from None

    def positive_neighbors(self, node: Node) -> List[Node]:
        """Return the neighbours joined to ``node`` by a positive edge."""
        return [v for v, s in self.signed_neighbors(node) if s == POSITIVE]

    def negative_neighbors(self, node: Node) -> List[Node]:
        """Return the neighbours joined to ``node`` by a negative edge."""
        return [v for v, s in self.signed_neighbors(node) if s == NEGATIVE]

    def degree(self, node: Node) -> int:
        """Return the number of edges incident to ``node``."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        return len(self._adjacency[node])

    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self._adjacency)

    def number_of_edges(self) -> int:
        """Return ``|E|``."""
        return self._num_edges

    def number_of_positive_edges(self) -> int:
        """Return the number of friend edges."""
        return self._num_positive

    def number_of_negative_edges(self) -> int:
        """Return the number of foe edges."""
        return self._num_edges - self._num_positive

    # ------------------------------------------------------------- transforms

    def csr_view(self):
        """Return the indexed CSR snapshot of this graph (cached until mutation).

        The view (:class:`~repro.signed.csr.CSRSignedGraph`) maps nodes to
        dense integer ids and stores adjacency as flat offset/neighbour/sign
        arrays — the backend the batched BFS algorithms run on.  It is rebuilt
        lazily after any mutation; holding on to a stale view is safe (it is a
        snapshot) but new queries through this method always reflect the
        current graph.
        """
        from repro.signed.csr import CSRSignedGraph

        cached = self._csr_cache
        if cached is not None and cached[0] == self._mutations:
            return cached[1]
        view = CSRSignedGraph.from_signed_graph(self)
        self._csr_cache = (self._mutations, view)
        return view

    def copy(self) -> "SignedGraph":
        """Return an independent copy of the graph."""
        clone = SignedGraph()
        clone._adjacency = {u: dict(nbrs) for u, nbrs in self._adjacency.items()}
        clone._num_edges = self._num_edges
        clone._num_positive = self._num_positive
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "SignedGraph":
        """Return the subgraph induced by ``nodes`` (missing nodes raise)."""
        node_set = set(nodes)
        missing = [n for n in node_set if n not in self._adjacency]
        if missing:
            raise NodeNotFoundError(missing[0])
        sub = SignedGraph()
        for node in node_set:
            sub.add_node(node)
        for node in node_set:
            for neighbor, sign in self._adjacency[node].items():
                if neighbor in node_set and not sub.has_edge(node, neighbor):
                    sub.add_edge(node, neighbor, sign)
        return sub

    def path_sign(self, path: List[Node]) -> Sign:
        """Return the sign of ``path`` — the product of its edge signs.

        ``path`` is a list of nodes; every consecutive pair must be an edge.
        A single-node path has sign ``+1`` (empty product).
        """
        sign = POSITIVE
        for u, v in zip(path, path[1:]):
            sign *= self.sign(u, v)
        return sign

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignedGraph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __repr__(self) -> str:
        return (
            f"SignedGraph(nodes={self.number_of_nodes()}, edges={self.number_of_edges()}, "
            f"negative={self.number_of_negative_edges()})"
        )
