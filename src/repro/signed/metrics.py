"""Descriptive statistics of signed graphs (Table 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.signed.components import connected_components, is_connected
from repro.signed.graph import NEGATIVE, POSITIVE, Node, SignedGraph
from repro.signed.paths import shortest_path_lengths
from repro.utils.rng import RandomState, ensure_rng


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a signed graph, mirroring the paper's Table 1."""

    num_nodes: int
    num_edges: int
    num_negative_edges: int
    negative_fraction: float
    diameter: Optional[int]
    num_components: int
    average_degree: float

    def as_dict(self) -> Dict[str, object]:
        """Return the statistics as a plain dictionary (for table rendering)."""
        return {
            "#users": self.num_nodes,
            "#edges": self.num_edges,
            "#neg edges": self.num_negative_edges,
            "neg fraction": round(self.negative_fraction, 4),
            "diameter": self.diameter,
            "#components": self.num_components,
            "avg degree": round(self.average_degree, 2),
        }


def negative_edge_fraction(graph: SignedGraph) -> float:
    """Fraction of edges that are negative (0.0 for an empty edge set)."""
    if graph.number_of_edges() == 0:
        return 0.0
    return graph.number_of_negative_edges() / graph.number_of_edges()


def average_degree(graph: SignedGraph) -> float:
    """Mean node degree (0.0 for an empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    return 2.0 * graph.number_of_edges() / graph.number_of_nodes()


def degree_histogram(graph: SignedGraph) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        degree = graph.degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def sign_distribution(graph: SignedGraph) -> Dict[int, int]:
    """Map sign (+1 / -1) -> number of edges with that sign."""
    return {
        POSITIVE: graph.number_of_positive_edges(),
        NEGATIVE: graph.number_of_negative_edges(),
    }


def diameter(
    graph: SignedGraph,
    sample_sources: Optional[int] = None,
    seed: RandomState = None,
) -> Optional[int]:
    """Diameter of the graph ignoring edge signs.

    Returns ``None`` for an empty graph and for a disconnected graph (the
    paper's datasets are restricted to their largest connected component
    first).  For large graphs an eccentricity *estimate* can be requested by
    passing ``sample_sources``: the BFS is then run only from that many
    randomly chosen sources and the largest distance observed is returned,
    which is a lower bound on the true diameter.
    """
    nodes = graph.nodes()
    if not nodes:
        return None
    if not is_connected(graph):
        return None
    if sample_sources is not None:
        if sample_sources <= 0:
            raise ValueError(f"sample_sources must be positive, got {sample_sources}")
        rng = ensure_rng(seed)
        sources: List[Node] = rng.sample(nodes, min(sample_sources, len(nodes)))
    else:
        sources = nodes
    best = 0
    for source in sources:
        lengths = shortest_path_lengths(graph, source)
        eccentricity = max(lengths.values())
        best = max(best, eccentricity)
    return best


def graph_statistics(
    graph: SignedGraph,
    diameter_sample_sources: Optional[int] = None,
    seed: RandomState = None,
) -> GraphStatistics:
    """Compute the Table-1 statistics for ``graph``.

    ``diameter_sample_sources`` is forwarded to :func:`diameter` so large
    graphs can report an estimated diameter.
    """
    components = connected_components(graph) if graph.number_of_nodes() else []
    return GraphStatistics(
        num_nodes=graph.number_of_nodes(),
        num_edges=graph.number_of_edges(),
        num_negative_edges=graph.number_of_negative_edges(),
        negative_fraction=negative_edge_fraction(graph),
        diameter=diameter(graph, sample_sources=diameter_sample_sources, seed=seed),
        num_components=len(components),
        average_degree=average_degree(graph),
    )
