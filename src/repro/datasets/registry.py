"""Dataset registry: look up the paper's datasets (or their stand-ins) by name."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.datasets.synthetic import (
    SignedDataset,
    epinions_like,
    million_scale_dataset,
    slashdot_like,
    toy_dataset,
    wikipedia_like,
)
from repro.exceptions import UnknownDatasetError
from repro.utils.rng import RandomState

#: Factory functions keyed by dataset name.  Every factory accepts ``seed``
#: and ``scale`` keyword arguments (``toy`` ignores ``scale``).
_FACTORIES: Dict[str, Callable[..., SignedDataset]] = {
    "toy": lambda seed=7, scale=1.0: toy_dataset(seed=seed),
    "slashdot": lambda seed=13, scale=1.0: slashdot_like(seed=seed, scale=scale),
    "epinions": lambda seed=17, scale=0.08: epinions_like(seed=seed, scale=scale),
    "wikipedia": lambda seed=19, scale=0.15: wikipedia_like(seed=seed, scale=scale),
    # CSR-only scale benchmark: scale=1.0 is 1M nodes / ~10M edges.
    "million": lambda seed=43, scale=1.0: million_scale_dataset(seed=seed, scale=scale),
}

#: The three datasets the paper evaluates on, in Table-1 order.
PAPER_DATASETS = ("slashdot", "epinions", "wikipedia")

#: Datasets that are deliberately huge at their default scale — bulk
#: operations (the CLI ``datasets`` listing, "run everything" sweeps) must
#: not generate these implicitly; they are loaded only when named.
ON_DEMAND_DATASETS = frozenset({"million"})


def available() -> List[str]:
    """Names of all registered datasets."""
    return sorted(_FACTORIES)


def load_dataset(
    name: str,
    seed: RandomState = None,
    scale: Optional[float] = None,
) -> SignedDataset:
    """Load (generate) the dataset called ``name``.

    ``seed`` and ``scale`` override the dataset's defaults when given; the
    defaults are chosen so that the whole experiment suite runs in minutes.
    """
    key = name.lower()
    factory = _FACTORIES.get(key)
    if factory is None:
        raise UnknownDatasetError(name)
    kwargs = {}
    if seed is not None:
        kwargs["seed"] = seed
    if scale is not None:
        kwargs["scale"] = scale
    return factory(**kwargs)


def register_dataset(name: str, factory: Callable[..., SignedDataset]) -> None:
    """Register a custom dataset factory (e.g. a loader for the real SNAP files).

    The factory must accept ``seed`` and ``scale`` keyword arguments (it may
    ignore them).  Registering an existing name overwrites it.
    """
    _FACTORIES[name.lower()] = factory
