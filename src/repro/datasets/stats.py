"""Dataset-level statistics (Table 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datasets.synthetic import SignedDataset
from repro.signed.metrics import graph_statistics
from repro.skills.stats import skill_statistics
from repro.utils.rng import RandomState


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of Table 1: users, edges, negative edges, diameter, skills."""

    name: str
    num_users: int
    num_edges: int
    num_negative_edges: int
    negative_fraction: float
    diameter: Optional[int]
    num_skills: int
    average_skills_per_user: float

    def as_row(self) -> List[object]:
        """Render as a table row in the paper's column order."""
        negative = f"{self.num_negative_edges} ({100.0 * self.negative_fraction:.1f}%)"
        return [
            self.name,
            self.num_users,
            self.num_edges,
            negative,
            self.diameter,
            self.num_skills,
        ]


def dataset_statistics(
    dataset: SignedDataset,
    diameter_sample_sources: Optional[int] = None,
    seed: RandomState = None,
) -> DatasetStatistics:
    """Compute the Table-1 statistics for ``dataset``.

    For large graphs pass ``diameter_sample_sources`` to estimate the diameter
    from a sample of BFS sources instead of all of them.
    """
    graph_stats = graph_statistics(
        dataset.graph, diameter_sample_sources=diameter_sample_sources, seed=seed
    )
    skills_stats = skill_statistics(dataset.skills)
    return DatasetStatistics(
        name=dataset.name,
        num_users=graph_stats.num_nodes,
        num_edges=graph_stats.num_edges,
        num_negative_edges=graph_stats.num_negative_edges,
        negative_fraction=graph_stats.negative_fraction,
        diameter=graph_stats.diameter,
        num_skills=skills_stats.num_skills,
        average_skills_per_user=skills_stats.average_skills_per_user,
    )
