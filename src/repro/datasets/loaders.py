"""Loaders for real dataset files (used when the SNAP downloads are available).

The paper builds its datasets from:

* the SNAP signed networks ``soc-sign-Slashdot*``, ``soc-sign-epinions`` and
  ``wiki-Elec`` (edge lists with a sign column), and
* per-user category information (Slashdot post categories, RED product
  categories) serving as skills.

This module reads those files from local disk — it never downloads anything —
and produces the same :class:`~repro.datasets.synthetic.SignedDataset` objects
as the synthetic generators, so everything downstream is agnostic to the data
source.  When no skill file is given, the paper's synthetic Zipf skill model
is applied (exactly what the paper itself does for Wikipedia).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.datasets.synthetic import SignedDataset
from repro.exceptions import DatasetError
from repro.signed.components import largest_connected_component
from repro.signed.io import read_edge_list
from repro.skills.generators import assign_skills_zipf
from repro.skills.io import read_assignment, read_user_skill_pairs
from repro.utils.rng import RandomState

PathLike = Union[str, Path]


def load_snap_dataset(
    name: str,
    edges_path: PathLike,
    skills_path: Optional[PathLike] = None,
    num_synthetic_skills: int = 500,
    skills_per_user: float = 4.0,
    restrict_to_lcc: bool = True,
    directed_to_undirected: str = "negative_wins",
    seed: RandomState = 0,
) -> SignedDataset:
    """Load a signed network from a SNAP-style edge list plus optional skills.

    Parameters
    ----------
    name:
        Name recorded on the resulting dataset.
    edges_path:
        Signed edge-list file (``u v sign`` per line, ``#`` comments).
    skills_path:
        Optional skill file.  ``.json`` files are read as
        ``{user: [skills...]}`` dictionaries, anything else as ``user skill``
        pairs, one per line.  When omitted, Zipf-distributed synthetic skills
        are generated (the paper's Wikipedia treatment).
    num_synthetic_skills / skills_per_user:
        Parameters of the synthetic skill model when ``skills_path`` is None.
    restrict_to_lcc:
        Restrict the graph to its largest connected component (the paper
        assumes a connected graph).
    directed_to_undirected:
        Policy for reconciling reciprocal edges with conflicting signs; see
        :func:`repro.signed.io.parse_edge_list`.
    seed:
        Seed for the synthetic skill model.
    """
    graph = read_edge_list(edges_path, directed_to_undirected=directed_to_undirected)
    if graph.number_of_nodes() == 0:
        raise DatasetError(f"edge list {edges_path} produced an empty graph")
    if restrict_to_lcc:
        graph = largest_connected_component(graph)

    if skills_path is not None:
        skills_file = Path(skills_path)
        if skills_file.suffix.lower() == ".json":
            skills = read_assignment(skills_file)
        else:
            skills = read_user_skill_pairs(skills_file)
        skills = skills.restricted_to(
            [user for user in skills.users() if user in graph]
        )
        for node in graph.nodes():
            if node not in skills:
                skills.add_user(node)
    else:
        skills = assign_skills_zipf(
            graph.nodes(),
            num_skills=num_synthetic_skills,
            skills_per_user=skills_per_user,
            seed=seed,
        )
    return SignedDataset(
        name=name,
        graph=graph,
        skills=skills,
        description=f"Loaded from {edges_path}"
        + (f" with skills from {skills_path}" if skills_path else " with synthetic skills"),
    )
