"""Loaders for real dataset files (used when the SNAP downloads are available).

The paper builds its datasets from:

* the SNAP signed networks ``soc-sign-Slashdot*``, ``soc-sign-epinions`` and
  ``wiki-Elec`` (edge lists with a sign column), and
* per-user category information (Slashdot post categories, RED product
  categories) serving as skills.

This module reads those files from local disk — it never downloads anything —
and produces the same :class:`~repro.datasets.synthetic.SignedDataset` objects
as the synthetic generators, so everything downstream is agnostic to the data
source.  When no skill file is given, the paper's synthetic Zipf skill model
is applied (exactly what the paper itself does for Wikipedia).
"""

from __future__ import annotations

import hashlib
import logging
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.datasets.synthetic import SignedDataset
from repro.exceptions import DatasetError
from repro.signed.components import largest_connected_component
from repro.signed.graph import SignedGraph
from repro.signed.io import read_edge_list
from repro.skills.generators import assign_skills_zipf
from repro.skills.io import read_assignment, read_user_skill_pairs
from repro.utils.optional import numpy_available
from repro.utils.rng import RandomState

PathLike = Union[str, Path]

#: Environment variable consulted when no explicit ``snapshot_cache_dir`` is
#: passed to :func:`load_snap_dataset`.  Unset (and no argument) means the
#: parse-once cache is disabled and every load parses the edge list.
SNAPSHOT_CACHE_ENV = "REPRO_SNAPSHOT_CACHE_DIR"

_logger = logging.getLogger(__name__)

#: Lifetime counters for the parse-once snapshot cache.  ``hits`` counts loads
#: served from a snapshot file, ``misses`` counts cold parses with no usable
#: entry (including cache-disabled loads), ``reparses`` counts the subset of
#: misses where an entry existed but was stale or corrupt and had to be
#: re-parsed and rewritten.
_CACHE_STATS: Dict[str, int] = {"hits": 0, "misses": 0, "reparses": 0}


def cache_stats() -> Dict[str, int]:
    """Return a copy of the snapshot-cache hit/miss/reparse counters."""
    return dict(_CACHE_STATS)


def reset_cache_stats() -> None:
    """Zero the snapshot-cache counters (test isolation helper)."""
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


def _snapshot_cache_dir(explicit: Optional[PathLike]) -> Optional[Path]:
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(SNAPSHOT_CACHE_ENV)
    return Path(env) if env else None


#: Version stamp mixed into the cache key.  Bumped when the parse pipeline
#: changes the produced node/edge order (v2: CSR-first ingestion with the
#: row-preserving largest-component restriction), so stale entries from older
#: code miss instead of silently serving a different node order.
_PARSE_FORMAT_VERSION = 2


def _snapshot_cache_file(
    cache_dir: Path,
    edges_file: Path,
    restrict_to_lcc: bool,
    directed_to_undirected: str,
) -> Path:
    """Cache filename for one (source file, mtime, size, parse options) key.

    The key covers every input that affects the *parsed graph*: the resolved
    source path, its mtime and size (so edits invalidate the entry), the
    parse options and the parse-format version.  Skill parameters are
    deliberately excluded — skills are derived from the cached graph on every
    load, so one cache entry serves all skill configurations.
    """
    stat = edges_file.stat()
    payload = repr(
        (
            str(edges_file),
            stat.st_mtime_ns,
            stat.st_size,
            restrict_to_lcc,
            directed_to_undirected,
            _PARSE_FORMAT_VERSION,
        )
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]
    return cache_dir / f"parse-{digest}.store"


def _dict_parse(
    edges_path: PathLike, restrict_to_lcc: bool, directed_to_undirected: str
) -> SignedGraph:
    """Reference dict-backend parse (also the error path: it raises the
    precise line-numbered :class:`DatasetError` for malformed files)."""
    graph = read_edge_list(edges_path, directed_to_undirected=directed_to_undirected)
    if graph.number_of_nodes() == 0:
        raise DatasetError(f"edge list {edges_path} produced an empty graph")
    if restrict_to_lcc:
        graph = largest_connected_component(graph)
    return graph


def _cold_parse(
    edges_path: PathLike,
    restrict_to_lcc: bool,
    directed_to_undirected: str,
    want_csr: bool,
):
    """Cold-parse an edge list, vectorised when numpy is available.

    Returns ``(graph, csr)`` where exactly one of the two is populated unless
    ``want_csr`` forces a CSR companion for a dict-parsed graph (cache writes
    and ``csr_only`` loads).  The vectorised parser covers every well-formed
    SNAP-style file; inputs it cannot prove bit-identical fall back to the
    dict parser, which also raises the reference errors.
    """
    if numpy_available():
        from repro.signed.ingest import parse_edge_list_csr

        csr = parse_edge_list_csr(
            edges_path,
            directed_to_undirected=directed_to_undirected,
            restrict_to_lcc=restrict_to_lcc,
        )
        if csr is not None:
            if csr.number_of_nodes() == 0:
                raise DatasetError(f"edge list {edges_path} produced an empty graph")
            return None, csr
    graph = _dict_parse(edges_path, restrict_to_lcc, directed_to_undirected)
    if want_csr and numpy_available():
        from repro.signed.csr import CSRSignedGraph

        return graph, CSRSignedGraph.from_signed_graph(graph)
    return graph, None


def _deliver(graph, csr, csr_only: bool) -> SignedGraph:
    """Produce the caller-facing graph from a cold/cached parse result.

    ``csr_only`` wraps the CSR planes in the lazy facade (no dict rebuild);
    otherwise the dict graph is returned, synthesised from the planes when
    the parse itself was CSR-first (bit-identical by the ingest contract).
    """
    if csr_only:
        from repro.signed.lazy import as_signed_graph

        if csr is None:  # numpy-free fallback never lands here (require_numpy)
            from repro.signed.csr import CSRSignedGraph

            csr = CSRSignedGraph.from_signed_graph(graph)
        return as_signed_graph(csr)
    if graph is not None:
        return graph
    return csr.to_signed_graph()


def _parse_edge_list_cached(
    edges_path: PathLike,
    restrict_to_lcc: bool,
    directed_to_undirected: str,
    snapshot_cache_dir: Optional[PathLike],
    csr_only: bool = False,
):
    """Parse an edge list, going through the snapshot-store cache when enabled.

    Returns ``(graph, labels)``.  Cold parses run the vectorised CSR-first
    reader (:mod:`repro.signed.ingest`) when numpy is available; a cache hit
    memory-maps the stored planes.  With ``csr_only`` the result is the lazy
    :class:`~repro.signed.lazy.CSRBackedSignedGraph` facade — on a hit the
    dict graph is never rebuilt and the edge list is never re-read.  Without
    it the dict graph is synthesised in the exact node/edge order a direct
    parse produces, so everything keyed off node order (Zipf skill assignment
    in particular) stays bit-identical.  ``labels`` is the persisted
    :class:`~repro.signed.labels.LabelIndex` when the cache entry carries the
    ``.store`` v2 label section (hits only, else ``None``).  Corrupt or
    unreadable cache entries fall back to parsing and are rewritten.
    """
    if csr_only and not numpy_available():
        from repro.utils.optional import require_numpy

        require_numpy("csr_only ingestion")
    cache_dir = _snapshot_cache_dir(snapshot_cache_dir)
    if cache_dir is None or not numpy_available():
        _CACHE_STATS["misses"] += 1
        _logger.debug("snapshot cache disabled for %s; parsing", edges_path)
        graph, csr = _cold_parse(
            edges_path, restrict_to_lcc, directed_to_undirected, want_csr=csr_only
        )
        return _deliver(graph, csr, csr_only), None

    from repro.signed.store import load_labels, load_snapshot, save_snapshot

    edges_file = Path(edges_path).resolve()
    cache_file = _snapshot_cache_file(
        cache_dir, edges_file, restrict_to_lcc, directed_to_undirected
    )
    entry_existed = cache_file.exists()
    if entry_existed:
        try:
            csr = load_snapshot(cache_file, mmap=True)
            try:
                labels = load_labels(cache_file, mmap=True)
            except (ValueError, OSError):
                labels = None
            _CACHE_STATS["hits"] += 1
            _logger.debug("snapshot cache hit for %s (%s)", edges_file, cache_file)
            return _deliver(None, csr, csr_only), labels
        except (ValueError, OSError):
            _CACHE_STATS["reparses"] += 1
            _logger.debug(
                "snapshot cache entry unusable for %s (%s); reparsing",
                edges_file,
                cache_file,
            )
            # stale/corrupt entry: reparse and overwrite below
    _CACHE_STATS["misses"] += 1
    if not entry_existed:
        _logger.debug("snapshot cache miss for %s (%s)", edges_file, cache_file)
    graph, csr = _cold_parse(
        edges_path, restrict_to_lcc, directed_to_undirected, want_csr=True
    )
    cache_dir.mkdir(parents=True, exist_ok=True)
    try:
        save_snapshot(csr, cache_file)
    except OSError:
        pass  # a read-only or full cache directory must not fail the load
    return _deliver(graph, csr, csr_only), None


def attach_cached_labels(
    edges_path: PathLike,
    labels,
    restrict_to_lcc: bool = True,
    directed_to_undirected: str = "negative_wins",
    snapshot_cache_dir: Optional[PathLike] = None,
) -> bool:
    """Persist a built :class:`~repro.signed.labels.LabelIndex` into the
    snapshot-cache entry for ``edges_path``.

    Subsequent :func:`load_snap_dataset` hits (same parse options) then return
    the index on ``dataset.label_index`` — no process ever rebuilds it.  The
    parse options must match the original load's.  Returns ``True`` when the
    entry was rewritten, ``False`` when there is no usable cache entry (cache
    disabled, entry missing/corrupt, or a read-only cache directory).
    """
    cache_dir = _snapshot_cache_dir(snapshot_cache_dir)
    if cache_dir is None or not numpy_available():
        return False
    from repro.signed.store import load_snapshot, save_snapshot

    edges_file = Path(edges_path).resolve()
    cache_file = _snapshot_cache_file(
        cache_dir, edges_file, restrict_to_lcc, directed_to_undirected
    )
    if not cache_file.exists():
        return False
    try:
        csr = load_snapshot(cache_file, mmap=True)
        save_snapshot(csr, cache_file, labels=labels)
    except (ValueError, OSError):
        return False
    return True


def load_snap_dataset(
    name: str,
    edges_path: PathLike,
    skills_path: Optional[PathLike] = None,
    num_synthetic_skills: int = 500,
    skills_per_user: float = 4.0,
    restrict_to_lcc: bool = True,
    directed_to_undirected: str = "negative_wins",
    seed: RandomState = 0,
    snapshot_cache_dir: Optional[PathLike] = None,
    csr_only: bool = False,
) -> SignedDataset:
    """Load a signed network from a SNAP-style edge list plus optional skills.

    Parameters
    ----------
    name:
        Name recorded on the resulting dataset.
    edges_path:
        Signed edge-list file (``u v sign`` per line, ``#`` comments).
    skills_path:
        Optional skill file.  ``.json`` files are read as
        ``{user: [skills...]}`` dictionaries, anything else as ``user skill``
        pairs, one per line.  When omitted, Zipf-distributed synthetic skills
        are generated (the paper's Wikipedia treatment).
    num_synthetic_skills / skills_per_user:
        Parameters of the synthetic skill model when ``skills_path`` is None.
    restrict_to_lcc:
        Restrict the graph to its largest connected component (the paper
        assumes a connected graph).
    directed_to_undirected:
        Policy for reconciling reciprocal edges with conflicting signs; see
        :func:`repro.signed.io.parse_edge_list`.
    seed:
        Seed for the synthetic skill model.
    snapshot_cache_dir:
        Directory for the parse-once snapshot cache.  When set (or when the
        ``REPRO_SNAPSHOT_CACHE_DIR`` environment variable names a directory),
        the parsed graph is saved as a ``.store`` snapshot keyed by the source
        file's path, mtime, size and parse options; subsequent loads
        memory-map the snapshot instead of re-parsing.  Requires numpy; on
        numpy-free installs the cache is silently skipped.
    csr_only:
        Serve the graph as a lazy CSR-backed facade
        (:class:`~repro.signed.lazy.CSRBackedSignedGraph`) instead of
        rebuilding the dict backend: cache hits memory-map the stored planes
        with zero edge-list re-reads and O(1) per-edge work, and cold parses
        run the vectorised reader end to end.  The facade *is* a
        ``SignedGraph`` — every consumer accepts it — and materialises the
        dict backend lazily if a dict-only code path is exercised.  Requires
        numpy.
    """
    graph, label_index = _parse_edge_list_cached(
        edges_path,
        restrict_to_lcc,
        directed_to_undirected,
        snapshot_cache_dir,
        csr_only=csr_only,
    )

    if skills_path is not None:
        skills_file = Path(skills_path)
        if skills_file.suffix.lower() == ".json":
            skills = read_assignment(skills_file)
        else:
            skills = read_user_skill_pairs(skills_file)
        skills = skills.restricted_to(
            [user for user in skills.users() if user in graph]
        )
        for node in graph.nodes():
            if node not in skills:
                skills.add_user(node)
    else:
        skills = assign_skills_zipf(
            graph.nodes(),
            num_skills=num_synthetic_skills,
            skills_per_user=skills_per_user,
            seed=seed,
        )
    return SignedDataset(
        name=name,
        graph=graph,
        skills=skills,
        description=f"Loaded from {edges_path}"
        + (f" with skills from {skills_path}" if skills_path else " with synthetic skills"),
        label_index=label_index,
    )
