"""Synthetic stand-ins for the paper's datasets (Slashdot, Epinions, Wikipedia).

The real datasets are signed networks from SNAP joined with per-user category
information; they cannot be downloaded in this offline environment, so this
module generates graphs that match the published statistics in Table 1 —
number of users and edges, fraction of negative edges, small diameter, number
of skills and Zipf-distributed skill frequencies — using a *faction-biased*
sign model: most negative edges run between two latent factions, so the signs
are largely consistent with structural balance, as they are in the real
networks.  Epinions and Wikipedia are generated at a reduced scale by default
(configurable via ``scale``) so the full experiment suite runs in minutes on a
laptop; the generator keeps the average degree and the negative-edge fraction
of the originals.

Every generator is deterministic given its ``seed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.signed.components import largest_connected_component
from repro.signed.graph import NEGATIVE, POSITIVE, Node, SignedGraph
from repro.skills.assignment import SkillAssignment
from repro.skills.generators import assign_skills_zipf
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive, require_probability


@dataclass
class SignedDataset:
    """A signed network together with its skill assignment.

    Attributes
    ----------
    name:
        Dataset name (e.g. ``"slashdot"``).
    graph:
        The signed graph (connected — restricted to its largest component).
    skills:
        The user ↔ skill assignment.
    factions:
        The planted faction of each node (synthetic datasets only).
    description:
        Human-readable provenance, including what the dataset stands in for.
    label_index:
        A persisted :class:`~repro.signed.labels.LabelIndex` recovered from
        the loader's snapshot cache (``.store`` v2 label section), or ``None``.
        Consumers attach it to their :class:`~repro.compatibility.distance.DistanceOracle`
        instead of rebuilding the index.
    """

    name: str
    graph: SignedGraph
    skills: SkillAssignment
    factions: Dict[Node, int] = field(default_factory=dict)
    description: str = ""
    label_index: Optional[object] = None

    def __repr__(self) -> str:
        return (
            f"SignedDataset(name={self.name!r}, users={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()}, skills={self.skills.number_of_skills()})"
        )


def faction_biased_signs(
    graph_edges: List[Tuple[Node, Node]],
    factions: Dict[Node, int],
    negative_fraction: float,
    cross_faction_bias: float = 0.9,
    seed: RandomState = None,
) -> SignedGraph:
    """Assign signs so that a target fraction of edges is negative, biased to cross-faction edges.

    Parameters
    ----------
    graph_edges:
        The unsigned edge list.
    factions:
        Node -> faction index.
    negative_fraction:
        Target fraction of negative edges (matched exactly up to rounding).
    cross_faction_bias:
        Fraction of the negative edges drawn from cross-faction edges (the
        rest are "noise" negatives inside a faction).  ``1.0`` gives signs as
        consistent with the planted partition as the edge supply allows.
    seed:
        Seed / generator for reproducibility.
    """
    require_probability(negative_fraction, "negative_fraction")
    require_probability(cross_faction_bias, "cross_faction_bias")
    rng = ensure_rng(seed)
    cross = [edge for edge in graph_edges if factions[edge[0]] != factions[edge[1]]]
    intra = [edge for edge in graph_edges if factions[edge[0]] == factions[edge[1]]]

    target_negative = int(round(negative_fraction * len(graph_edges)))
    negative_cross = min(len(cross), int(round(cross_faction_bias * target_negative)))
    negative_intra = min(len(intra), target_negative - negative_cross)
    # If one side ran short, top the other side up so the total still matches.
    shortfall = target_negative - negative_cross - negative_intra
    if shortfall > 0:
        extra_cross = min(shortfall, len(cross) - negative_cross)
        negative_cross += extra_cross
        shortfall -= extra_cross
        negative_intra += min(shortfall, len(intra) - negative_intra)

    negative_edges = set()
    if negative_cross:
        negative_edges.update(
            frozenset(edge) for edge in rng.sample(cross, negative_cross)
        )
    if negative_intra:
        negative_edges.update(
            frozenset(edge) for edge in rng.sample(intra, negative_intra)
        )

    graph = SignedGraph()
    try:
        ordered_nodes = sorted(factions)
    except TypeError:  # mixed node types: keep the factions insertion order
        ordered_nodes = list(factions)
    for node in ordered_nodes:
        graph.add_node(node)
    for u, v in graph_edges:
        if u == v:
            continue
        sign = NEGATIVE if frozenset((u, v)) in negative_edges else POSITIVE
        graph.add_edge(u, v, sign)
    return graph


def synthetic_signed_network(
    num_nodes: int,
    average_degree: float,
    negative_fraction: float,
    num_factions: int = 2,
    faction_sizes: Optional[List[float]] = None,
    cross_faction_bias: float = 0.9,
    topology: str = "scale_free",
    seed: RandomState = None,
) -> Tuple[SignedGraph, Dict[Node, int]]:
    """Generate a connected signed network with a target negative-edge fraction.

    The topology is generated first (scale-free by default, like real social
    networks), nodes are split into factions, signs are drawn with
    :func:`faction_biased_signs`, and the result is restricted to its largest
    connected component.
    """
    require_positive(num_nodes, "num_nodes")
    require_positive(average_degree, "average_degree")
    rng = ensure_rng(seed)

    topology_graph = _build_topology(num_nodes, average_degree, topology, rng)
    nodes = list(topology_graph.nodes())
    factions = _split_into_factions(nodes, num_factions, faction_sizes, rng)
    edges = [(u, v) for u, v in topology_graph.edges() if u != v]
    signed = faction_biased_signs(
        edges,
        factions,
        negative_fraction=negative_fraction,
        cross_faction_bias=cross_faction_bias,
        seed=rng,
    )
    component = largest_connected_component(signed)
    surviving_factions = {node: factions[node] for node in component.nodes()}
    return component, surviving_factions


def slashdot_like(seed: RandomState = 13, scale: float = 1.0) -> SignedDataset:
    """Synthetic stand-in for the paper's Slashdot subset.

    Target statistics (Table 1): 214 users, 304 edges, 29.2 % negative edges,
    diameter ≈ 9, 1 024 skills (post categories).  The graph is sparse, so an
    Erdős–Rényi topology restricted to its giant component reproduces the
    long, thin shape (large diameter) of the original subset.
    """
    require_probability(min(1.0, scale), "scale")
    rng = ensure_rng(seed)
    num_nodes = max(20, int(round(235 * scale)))
    graph, factions = synthetic_signed_network(
        num_nodes=num_nodes,
        average_degree=2.9,
        negative_fraction=0.292,
        num_factions=2,
        faction_sizes=[0.6, 0.4],
        cross_faction_bias=0.85,
        topology="erdos_renyi",
        seed=rng,
    )
    skills = assign_skills_zipf(
        graph.nodes(),
        num_skills=max(32, int(round(1024 * scale))),
        skills_per_user=12.0,
        exponent=1.1,
        skill_prefix="category",
        seed=rng,
    )
    return SignedDataset(
        name="slashdot",
        graph=graph,
        skills=skills,
        factions=factions,
        description=(
            "Synthetic stand-in for the Slashdot friend/foe subset used in the paper "
            "(214 users, 304 edges, 29.2% negative); skills model post categories."
        ),
    )


def epinions_like(seed: RandomState = 17, scale: float = 0.08) -> SignedDataset:
    """Synthetic stand-in for the Epinions signed network joined with RED categories.

    The original has 28 854 users, 208 778 edges (16.7 % negative) and 523
    product-category skills.  The default ``scale`` of 0.08 yields roughly
    2 300 users while preserving the average degree, the negative-edge
    fraction and the skill universe size.
    """
    require_positive(scale, "scale")
    rng = ensure_rng(seed)
    num_nodes = max(50, int(round(28_854 * scale)))
    graph, factions = synthetic_signed_network(
        num_nodes=num_nodes,
        average_degree=14.5,
        negative_fraction=0.167,
        num_factions=2,
        faction_sizes=[0.7, 0.3],
        cross_faction_bias=0.9,
        topology="scale_free",
        seed=rng,
    )
    skills = assign_skills_zipf(
        graph.nodes(),
        num_skills=523,
        skills_per_user=6.0,
        exponent=1.0,
        skill_prefix="product",
        seed=rng,
    )
    return SignedDataset(
        name="epinions",
        graph=graph,
        skills=skills,
        factions=factions,
        description=(
            "Synthetic stand-in for the Epinions trust/distrust network joined with the "
            "RED product categories (28,854 users, 208,778 edges, 16.7% negative), "
            f"generated at scale={scale}."
        ),
    )


def wikipedia_like(seed: RandomState = 19, scale: float = 0.15) -> SignedDataset:
    """Synthetic stand-in for the Wikipedia adminship-election signed network.

    The original has 7 066 users and 100 790 edges (21.5 % negative); skills
    are synthetic in the paper as well (500 Zipf-distributed skills assigned
    uniformly at random), so the skill model here is identical to the paper's.
    """
    require_positive(scale, "scale")
    rng = ensure_rng(seed)
    num_nodes = max(50, int(round(7_066 * scale)))
    graph, factions = synthetic_signed_network(
        num_nodes=num_nodes,
        average_degree=14.0,
        negative_fraction=0.215,
        num_factions=2,
        faction_sizes=[0.55, 0.45],
        cross_faction_bias=0.9,
        topology="scale_free",
        seed=rng,
    )
    skills = assign_skills_zipf(
        graph.nodes(),
        num_skills=500,
        skills_per_user=4.0,
        exponent=1.0,
        skill_prefix="skill",
        seed=rng,
    )
    return SignedDataset(
        name="wikipedia",
        graph=graph,
        skills=skills,
        factions=factions,
        description=(
            "Synthetic stand-in for the Wikipedia admin-election signed network "
            "(7,066 users, 100,790 edges, 21.5% negative) with the paper's own "
            f"synthetic Zipf skill model, generated at scale={scale}."
        ),
    )


def toy_dataset(seed: RandomState = 7) -> SignedDataset:
    """A tiny deterministic dataset for quickstarts, tests and documentation.

    Twelve users in two friendly clusters joined by a few negative edges, with
    a handful of named skills spread so that small tasks are solvable.
    """
    edges = [
        ("ana", "bob", POSITIVE),
        ("ana", "cat", POSITIVE),
        ("bob", "cat", POSITIVE),
        ("cat", "dan", POSITIVE),
        ("dan", "eve", POSITIVE),
        ("eve", "ana", POSITIVE),
        ("fay", "gus", POSITIVE),
        ("gus", "hal", POSITIVE),
        ("hal", "ivy", POSITIVE),
        ("ivy", "fay", POSITIVE),
        ("ivy", "jon", POSITIVE),
        ("jon", "kim", POSITIVE),
        ("kim", "lee", POSITIVE),
        ("lee", "jon", POSITIVE),
        ("dan", "fay", NEGATIVE),
        ("eve", "gus", NEGATIVE),
        ("cat", "jon", POSITIVE),
        ("bob", "kim", NEGATIVE),
    ]
    graph = SignedGraph.from_edges(edges)
    skills = SkillAssignment(
        {
            "ana": {"python", "statistics"},
            "bob": {"python", "databases"},
            "cat": {"visualisation", "databases"},
            "dan": {"statistics", "devops"},
            "eve": {"frontend", "python"},
            "fay": {"devops", "databases"},
            "gus": {"frontend", "design"},
            "hal": {"design", "writing"},
            "ivy": {"writing", "statistics"},
            "jon": {"python", "design"},
            "kim": {"databases", "writing"},
            "lee": {"visualisation", "frontend"},
        }
    )
    return SignedDataset(
        name="toy",
        graph=graph,
        skills=skills,
        factions={},
        description="Hand-crafted 12-user example used by the quickstart and the tests.",
    )


def figure_1a_graph() -> SignedGraph:
    """The example of Figure 1(a): ``u`` and ``v`` are SBP- but not SP-compatible.

    The only shortest path ``(u, x1, v)`` is negative, so no SP relation holds.
    The path ``(u, x2, x3, x4, v)`` is positive and structurally balanced, so
    SBP holds; the shorter positive path ``(u, x2, x1, v)`` is *not*
    structurally balanced because the shortcut edge ``(u, x1)`` closes the
    unbalanced triangle ``(u, x1, x2)``.
    """
    return SignedGraph.from_edges(
        [
            ("u", "x1", NEGATIVE),
            ("x1", "v", POSITIVE),
            ("u", "x2", POSITIVE),
            ("x2", "x1", POSITIVE),
            ("x2", "x3", NEGATIVE),
            ("x3", "x4", NEGATIVE),
            ("x4", "v", POSITIVE),
        ]
    )


def figure_1b_graph() -> SignedGraph:
    """An example in the spirit of Figure 1(b): the prefix property fails.

    The shortest positive structurally balanced path from ``u`` to ``x4`` is
    ``(u, x3, x4)``, yet it cannot be extended towards ``v`` — adding ``x5``
    closes the unbalanced triangle ``(x3, x4, x5)``.  The only positive
    structurally balanced path from ``u`` to ``v`` is the longer
    ``(u, x1, x2, x4, x5, v)``, whose prefix to ``x4`` is *not* the shortest
    balanced one.  Consequently the SBPH heuristic (which keeps a single
    representative path per node and sign) misses the ``(u, v)`` pair while
    the exact SBP relation contains it.
    """
    return SignedGraph.from_edges(
        [
            ("u", "x1", POSITIVE),
            ("x1", "x2", POSITIVE),
            ("x2", "x4", POSITIVE),
            ("u", "x3", POSITIVE),
            ("x3", "x4", POSITIVE),
            ("x3", "x5", NEGATIVE),
            ("x4", "x5", POSITIVE),
            ("x5", "v", POSITIVE),
        ]
    )


# --------------------------------------------------------------------------- internals


def _build_topology(
    num_nodes: int, average_degree: float, topology: str, rng
) -> nx.Graph:
    nx_seed = rng.randrange(2**32)
    if topology == "scale_free":
        attachment = max(1, int(round(average_degree / 2.0)))
        attachment = min(attachment, max(1, num_nodes - 1))
        return nx.barabasi_albert_graph(num_nodes, attachment, seed=nx_seed)
    if topology == "small_world":
        neighbors = max(2, int(round(average_degree)))
        if num_nodes <= neighbors:
            return nx.complete_graph(num_nodes)
        return nx.connected_watts_strogatz_graph(num_nodes, neighbors, 0.1, seed=nx_seed)
    probability = min(1.0, average_degree / max(1, num_nodes - 1))
    return nx.gnp_random_graph(num_nodes, probability, seed=nx_seed)


def _split_into_factions(
    nodes: List[Node],
    num_factions: int,
    faction_sizes: Optional[List[float]],
    rng,
) -> Dict[Node, int]:
    require_positive(num_factions, "num_factions")
    if faction_sizes is None:
        weights = [1.0] * num_factions
    else:
        if len(faction_sizes) != num_factions:
            raise ValueError(
                f"faction_sizes has {len(faction_sizes)} entries, expected {num_factions}"
            )
        weights = list(faction_sizes)
    total = sum(weights)
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    factions: Dict[Node, int] = {}
    start = 0
    for index, weight in enumerate(weights):
        count = int(round(len(shuffled) * weight / total))
        if index == len(weights) - 1:
            count = len(shuffled) - start
        for node in shuffled[start : start + count]:
            factions[node] = index
        start += count
    # Any rounding leftovers land in the last faction.
    for node in shuffled[start:]:
        factions[node] = num_factions - 1
    return factions


# ------------------------------------------------------------------ CSR scale


def synthetic_csr_network(
    num_nodes: int,
    average_degree: float = 20.0,
    negative_fraction: float = 0.17,
    num_factions: int = 8,
    cross_faction_bias: float = 0.9,
    seed: Optional[int] = 0,
):
    """Generate a connected signed network straight into CSR planes.

    This is the million-node counterpart of :func:`synthetic_signed_network`:
    the whole pipeline is vectorised numpy and never touches the dict
    :class:`~repro.signed.graph.SignedGraph`, so a 1M-node / 10M-edge graph
    builds in seconds within a few hundred MB.

    The topology is a random Hamiltonian path (guaranteeing connectivity, so
    no LCC pass is needed) plus uniform random extra edges up to the target
    edge count.  Signs follow the same planted-partition semantics as
    :func:`faction_biased_signs`: ``negative_fraction`` of the edges are
    negative, with ``cross_faction_bias`` of those drawn from cross-faction
    edges (topped up from the other pool when one runs short).

    Returns ``(csr, factions)`` where ``csr`` is a
    :class:`~repro.signed.csr.CSRSignedGraph` whose nodes are ``0..n-1`` (in
    order, so ``.store`` snapshots use the zero-byte ``range`` node table) and
    ``factions`` is an ``int64`` array of per-node faction indices.
    """
    from repro.utils.optional import require_numpy

    require_numpy("synthetic_csr_network")
    import numpy as np

    from repro.signed.csr import CSRSignedGraph
    from repro.signed.ingest import build_csr_planes

    require_positive(num_nodes, "num_nodes")
    require_positive(average_degree, "average_degree")
    require_positive(num_factions, "num_factions")
    require_probability(negative_fraction, "negative_fraction")
    require_probability(cross_faction_bias, "cross_faction_bias")
    rng = np.random.default_rng(seed)
    n = int(num_nodes)

    # Backbone: a random permutation path keeps every node in one component.
    perm = rng.permutation(n).astype(np.int64)
    target_edges = max(n - 1, int(round(n * average_degree / 2.0)))
    extra = target_edges - (n - 1)
    eu = np.concatenate((perm[:-1], rng.integers(0, n, size=extra, dtype=np.int64)))
    ev = np.concatenate((perm[1:], rng.integers(0, n, size=extra, dtype=np.int64)))

    # Drop self-loops, then dedupe unordered pairs keeping first appearance
    # (so the backbone edges, listed first, always survive).
    keep = eu != ev
    eu, ev = eu[keep], ev[keep]
    lo = np.minimum(eu, ev)
    hi = np.maximum(eu, ev)
    _, first_idx = np.unique(lo * n + hi, return_index=True)
    first_idx.sort()
    eu, ev = eu[first_idx], ev[first_idx]
    m = eu.size

    factions = rng.integers(0, num_factions, size=n, dtype=np.int64)
    cross = factions[eu] != factions[ev]
    cross_idx = np.flatnonzero(cross)
    intra_idx = np.flatnonzero(~cross)

    target_negative = int(round(negative_fraction * m))
    negative_cross = min(cross_idx.size, int(round(cross_faction_bias * target_negative)))
    negative_intra = min(intra_idx.size, target_negative - negative_cross)
    shortfall = target_negative - negative_cross - negative_intra
    if shortfall > 0:
        extra_cross = min(shortfall, cross_idx.size - negative_cross)
        negative_cross += extra_cross
        shortfall -= extra_cross
        negative_intra += min(shortfall, intra_idx.size - negative_intra)

    signs = np.ones(m, dtype=np.int64)
    if negative_cross:
        signs[rng.choice(cross_idx, size=negative_cross, replace=False)] = -1
    if negative_intra:
        signs[rng.choice(intra_idx, size=negative_intra, replace=False)] = -1

    indptr, indices, sign_plane = build_csr_planes(n, eu, ev, signs)
    return CSRSignedGraph(indptr, indices, sign_plane, list(range(n))), factions


def _vectorised_zipf_skills(
    num_users: int,
    num_skills: int,
    skills_per_user: float,
    exponent: float,
    seed: Optional[int],
) -> SkillAssignment:
    """Zipf-popularity skills for dense ``0..n-1`` users, vectorised.

    Matches the spirit (and the ``skill-<rank>`` naming) of
    :func:`~repro.skills.generators.assign_skills_zipf` without its per-user
    Python sampling loop: per-user skill counts are ``1 + Poisson(mean - 1)``
    and each draw picks a skill rank from the Zipf law.  Every user keeps at
    least one skill.
    """
    import numpy as np

    rng = np.random.default_rng(None if seed is None else seed + 0x5B1F)
    ranks = np.arange(1, num_skills + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    probabilities = weights / weights.sum()

    counts = 1 + rng.poisson(max(0.0, skills_per_user - 1.0), size=num_users)
    draws = rng.choice(num_skills, size=int(counts.sum()), p=probabilities)
    users = np.repeat(np.arange(num_users, dtype=np.int64), counts)
    # Collapse duplicate (user, skill) draws.
    pair_key = np.unique(users * num_skills + draws)

    names = [f"skill-{rank}" for rank in range(1, num_skills + 1)]
    mapping: Dict[Node, set] = {}
    for key in pair_key.tolist():
        mapping.setdefault(key // num_skills, set()).add(names[key % num_skills])

    assignment = SkillAssignment()
    for user, skills in mapping.items():
        assignment.add_user(user, skills)
    return assignment


def million_scale_dataset(
    seed: Optional[int] = 43,
    scale: float = 1.0,
    average_degree: float = 20.0,
    negative_fraction: float = 0.17,
    num_skills: int = 500,
    skills_per_user: float = 4.0,
) -> SignedDataset:
    """A CSR-only synthetic dataset sized for the million-node experiments.

    ``scale=1.0`` is 1M nodes / ~10M undirected edges; smaller scales shrink
    proportionally (floor 1 000 nodes) so the same dataset name works in
    tests.  The graph is served through
    :func:`~repro.signed.lazy.as_signed_graph`, so consumers that stay on the
    CSR fast paths never materialise dict adjacency.  Factions are left out of
    the dataset record: a 1M-entry dict would defeat the point of the CSR-only
    path (use :func:`synthetic_csr_network` directly if you need them).
    """
    from repro.signed.lazy import as_signed_graph

    num_nodes = max(1000, int(round(1_000_000 * scale)))
    csr, _ = synthetic_csr_network(
        num_nodes,
        average_degree=average_degree,
        negative_fraction=negative_fraction,
        seed=seed,
    )
    skills = _vectorised_zipf_skills(
        num_nodes, num_skills, skills_per_user, exponent=1.0, seed=seed
    )
    return SignedDataset(
        name="million",
        graph=as_signed_graph(csr),
        skills=skills,
        description=(
            f"CSR-only synthetic benchmark graph: {num_nodes} nodes at average "
            f"degree {average_degree:g}, planted-partition signs "
            f"({negative_fraction:.0%} negative). Built without the dict graph."
        ),
    )
