"""Datasets: synthetic stand-ins for the paper's networks, loaders, statistics."""

from repro.datasets.synthetic import (
    SignedDataset,
    epinions_like,
    faction_biased_signs,
    figure_1a_graph,
    figure_1b_graph,
    slashdot_like,
    synthetic_signed_network,
    toy_dataset,
    wikipedia_like,
)
from repro.datasets.registry import (
    PAPER_DATASETS,
    available,
    load_dataset,
    register_dataset,
)
from repro.datasets.loaders import cache_stats, load_snap_dataset, reset_cache_stats
from repro.datasets.stats import DatasetStatistics, dataset_statistics

__all__ = [
    "SignedDataset",
    "slashdot_like",
    "epinions_like",
    "wikipedia_like",
    "toy_dataset",
    "figure_1a_graph",
    "figure_1b_graph",
    "synthetic_signed_network",
    "faction_biased_signs",
    "PAPER_DATASETS",
    "available",
    "load_dataset",
    "register_dataset",
    "load_snap_dataset",
    "cache_stats",
    "reset_cache_stats",
    "DatasetStatistics",
    "dataset_statistics",
]
