"""Datasets: synthetic stand-ins for the paper's networks, loaders, statistics."""

from repro.datasets.synthetic import (
    SignedDataset,
    epinions_like,
    faction_biased_signs,
    figure_1a_graph,
    figure_1b_graph,
    million_scale_dataset,
    slashdot_like,
    synthetic_csr_network,
    synthetic_signed_network,
    toy_dataset,
    wikipedia_like,
)
from repro.datasets.registry import (
    ON_DEMAND_DATASETS,
    PAPER_DATASETS,
    available,
    load_dataset,
    register_dataset,
)
from repro.datasets.loaders import (
    attach_cached_labels,
    cache_stats,
    load_snap_dataset,
    reset_cache_stats,
)
from repro.datasets.stats import DatasetStatistics, dataset_statistics

__all__ = [
    "SignedDataset",
    "slashdot_like",
    "epinions_like",
    "wikipedia_like",
    "toy_dataset",
    "figure_1a_graph",
    "figure_1b_graph",
    "synthetic_signed_network",
    "synthetic_csr_network",
    "million_scale_dataset",
    "faction_biased_signs",
    "PAPER_DATASETS",
    "ON_DEMAND_DATASETS",
    "available",
    "load_dataset",
    "register_dataset",
    "load_snap_dataset",
    "attach_cached_labels",
    "cache_stats",
    "reset_cache_stats",
    "DatasetStatistics",
    "dataset_statistics",
]
