"""Experiment T2 — Table 2: comparison of compatibility relations.

For every dataset and every relation the experiment reports:

* the percentage of compatible (unordered) user pairs,
* the percentage of compatible skill pairs (``cd(s1, s2) > 0``),
* the average distance between compatible users (using the relation's own
  distance definition).

Like the paper, the exact SBP relation is only evaluated on datasets where it
is feasible (the Slashdot stand-in); the corresponding cells are left empty
("–") elsewhere.  An additional SBP-vs-SBPH agreement figure is recorded for
the datasets where both are available (the paper reports ~2.5 % disagreement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compatibility import (
    SkillCompatibilityIndex,
    average_compatible_distance,
    exact_pair_statistics,
    relation_overlap,
    skill_pair_statistics,
    source_sampled_pair_statistics,
)
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.workloads import (
    DatasetContext,
    RelationContext,
    build_all_dataset_contexts,
)
from repro.utils.tables import format_table


@dataclass(frozen=True)
class Table2Cell:
    """One (dataset, relation) entry of Table 2."""

    relation: str
    compatible_users_pct: float
    compatible_skills_pct: float
    average_distance: float
    compatible_pairs_evaluated: int


@dataclass
class Table2DatasetResult:
    """All relation columns for one dataset."""

    dataset: str
    cells: Dict[str, Optional[Table2Cell]] = field(default_factory=dict)
    sbp_sbph_agreement: Optional[float] = None


@dataclass
class Table2Result:
    """Table 2 for every dataset."""

    relations: Tuple[str, ...]
    datasets: List[Table2DatasetResult] = field(default_factory=list)

    def as_text(self) -> str:
        """Render in the paper's Table-2 layout (three rows per dataset)."""
        headers = ["dataset / metric"] + list(self.relations)
        rows: List[List[object]] = []
        for dataset_result in self.datasets:
            for metric, attribute, decimals in (
                ("comp. users %", "compatible_users_pct", 2),
                ("comp. skills %", "compatible_skills_pct", 2),
                ("avg distance", "average_distance", 2),
            ):
                row: List[object] = [f"{dataset_result.dataset} {metric}"]
                for relation in self.relations:
                    cell = dataset_result.cells.get(relation)
                    row.append(None if cell is None else round(getattr(cell, attribute), decimals))
                rows.append(row)
            if dataset_result.sbp_sbph_agreement is not None:
                rows.append(
                    [f"{dataset_result.dataset} SBP~SBPH agreement %"]
                    + [round(100.0 * dataset_result.sbp_sbph_agreement, 2)]
                    + [None] * (len(self.relations) - 1)
                )
        return format_table(headers, rows, title="Table 2")


def _evaluate_relation(
    context: DatasetContext, relation_name: str
) -> Table2Cell:
    """Compute the three Table-2 metrics for one relation on one dataset."""
    dataset_config = context.config
    relation_context = context.relation_context(relation_name)
    relation = relation_context.relation

    if context.dataset.graph.number_of_nodes() <= dataset_config.max_exact_nodes:
        users_stats = exact_pair_statistics(relation)
    else:
        # Routed through the relation context's engine so the sampled sweep
        # shares its batched caches with the rest of the experiment.
        users_stats = source_sampled_pair_statistics(
            relation,
            dataset_config.num_sampled_sources,
            seed=dataset_config.seed,
            engine=relation_context.engine,
        )

    skill_index = SkillCompatibilityIndex(
        relation, context.dataset.skills, count_cap=1
    )
    num_skill_pairs = dataset_config.num_sampled_skill_pairs
    if num_skill_pairs is None:
        skills_stats = skill_pair_statistics(skill_index, max_exact_skills=10**9)
    else:
        skills_stats = skill_pair_statistics(
            skill_index,
            max_exact_skills=0,
            num_sampled_pairs=num_skill_pairs,
            seed=dataset_config.seed,
        )

    average_distance, pairs = average_compatible_distance(
        relation,
        oracle=relation_context.oracle,
        max_exact_nodes=dataset_config.max_exact_nodes,
        num_sampled_sources=dataset_config.num_sampled_sources,
        seed=dataset_config.seed,
    )
    return Table2Cell(
        relation=relation.name,
        compatible_users_pct=users_stats.percentage,
        compatible_skills_pct=skills_stats.percentage,
        average_distance=average_distance,
        compatible_pairs_evaluated=pairs,
    )


def run_table2(
    config: Optional[ExperimentConfig] = None,
    contexts: Optional[Dict[str, DatasetContext]] = None,
) -> Table2Result:
    """Compute Table 2 for every dataset and relation in ``config``."""
    config = config or default_config()
    contexts = contexts or build_all_dataset_contexts(config)
    result = Table2Result(relations=tuple(config.table2_relations))
    for name in config.dataset_names:
        context = contexts[name]
        dataset_result = Table2DatasetResult(dataset=name)
        for relation_name in config.table2_relations:
            if relation_name == "SBP" and not context.config.compute_exact_sbp:
                dataset_result.cells[relation_name] = None
                continue
            dataset_result.cells[relation_name] = _evaluate_relation(context, relation_name)
        if (
            context.config.compute_exact_sbp
            and "SBP" in config.table2_relations
            and "SBPH" in config.table2_relations
        ):
            sbp = context.relation_context("SBP").relation
            sbph = context.relation_context("SBPH").relation
            dataset_result.sbp_sbph_agreement = relation_overlap(
                sbp, sbph, seed=context.config.seed
            )
        result.datasets.append(dataset_result)
    return result
