"""Configuration of the experiment harness.

A single :class:`ExperimentConfig` drives every table and figure so the whole
evaluation is reproducible from one seed.  Two presets are provided:

* :func:`default_config` — the scale used for the reported numbers in
  ``EXPERIMENTS.md`` (minutes of runtime on a laptop);
* :func:`fast_config` — a miniature version used by the test-suite and the
  pytest-benchmark harness so that every experiment code path runs in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DatasetConfig:
    """Per-dataset generation and sampling parameters."""

    name: str
    seed: int
    scale: Optional[float] = None
    #: Evaluate pairwise statistics exactly when the graph has at most this many nodes.
    max_exact_nodes: int = 500
    #: Number of BFS sources used to estimate pairwise statistics on larger graphs.
    num_sampled_sources: int = 150
    #: Number of skill pairs sampled for the skill-compatibility statistics
    #: (``None`` enumerates all pairs).
    num_sampled_skill_pairs: Optional[int] = 2_000
    #: Whether the exact SBP relation is computed (exponential; small graphs only).
    compute_exact_sbp: bool = False
    #: Expansion cap for the exact SBP search.
    sbp_max_expansions: int = 200_000
    #: Backend for the SP* relations' BFS and SBPH's heuristic search:
    #: "auto" (CSR on large low-diameter graphs), "dict" (reference
    #: implementation) or "csr" (always indexed).
    sp_backend: str = "auto"
    #: Worker processes for the per-source kernel sweeps (0/1 = serial, the
    #: default, so existing invocations are unchanged; >= 2 dispatches to a
    #: process pool; -1 = one per CPU).  Results are identical either way.
    workers: int = 0
    #: Sources per worker task (None derives one from batch size and workers).
    chunk_size: Optional[int] = None
    #: Directory for file-backed snapshot publishing (None = shared memory;
    #: see :attr:`repro.exec.ExecutionPolicy.snapshot_store`).
    snapshot_store: Optional[str] = None

    def execution_policy(self) -> "ExecutionPolicy":
        """The :class:`~repro.exec.ExecutionPolicy` for this dataset's stacks."""
        from repro.exec import ExecutionPolicy

        return ExecutionPolicy(
            backend=self.sp_backend,
            workers=self.workers,
            chunk_size=self.chunk_size,
            snapshot_store=self.snapshot_store,
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """Top-level configuration shared by all experiments."""

    datasets: Tuple[DatasetConfig, ...]
    #: Dataset used by the team-formation experiments (Figure 2, Table 3).
    team_dataset: str = "epinions"
    #: Compatibility relations compared in Table 2, strictest first.
    table2_relations: Tuple[str, ...] = ("SPA", "SPM", "SPO", "SBPH", "SBP", "NNE")
    #: Relations used by the team-formation experiments (the paper drops DPE and SBP).
    team_relations: Tuple[str, ...] = ("SPA", "SPM", "SPO", "SBPH", "NNE")
    #: Algorithms compared in Figure 2(a)/(b).
    team_algorithms: Tuple[str, ...] = ("LCMD", "LCMC", "RANDOM")
    #: Number of random tasks per configuration (the paper uses 50).
    num_tasks: int = 50
    #: Task size for Figure 2(a)/(b) and Table 3 (the paper uses 5).
    task_size: int = 5
    #: Task sizes swept in Figure 2(c)/(d).
    task_sizes: Tuple[int, ...] = (2, 5, 10, 15, 20)
    #: Cap on seed users tried per task by Algorithm 2 (None = all, as in the paper).
    max_seeds: Optional[int] = 25
    #: Master seed for workload generation and the RANDOM policy.
    workload_seed: int = 2020

    def dataset(self, name: str) -> DatasetConfig:
        """Return the configuration of the dataset called ``name``."""
        for dataset in self.datasets:
            if dataset.name == name:
                return dataset
        raise KeyError(f"dataset {name!r} is not part of this configuration")

    def with_execution(
        self,
        workers: int = 0,
        chunk_size: Optional[int] = None,
        snapshot_store: Optional[str] = None,
    ) -> "ExperimentConfig":
        """A copy of this configuration with execution knobs applied everywhere.

        Sets ``workers`` / ``chunk_size`` / ``snapshot_store`` on every
        dataset, so each relation stack the experiments build runs its
        per-source kernel sweeps under the corresponding
        :class:`~repro.exec.ExecutionPolicy`.  The CLI's ``--workers`` /
        ``--chunk-size`` / ``--snapshot-store`` flags route through this.
        """
        return replace(
            self,
            datasets=tuple(
                replace(
                    dataset,
                    workers=workers,
                    chunk_size=chunk_size,
                    snapshot_store=snapshot_store,
                )
                for dataset in self.datasets
            ),
        )

    @property
    def dataset_names(self) -> Tuple[str, ...]:
        """Names of the configured datasets, in order."""
        return tuple(dataset.name for dataset in self.datasets)


def default_config() -> ExperimentConfig:
    """The configuration used for the numbers reported in ``EXPERIMENTS.md``.

    Matches the paper's setup as closely as the synthetic stand-ins allow:
    three datasets, 50 tasks per configuration, task size 5 for the algorithm
    comparison and sizes 2–20 for the sweep.  The exact SBP relation is only
    computed on the small Slashdot stand-in, like in the paper.
    """
    return ExperimentConfig(
        datasets=(
            DatasetConfig(
                name="slashdot",
                seed=13,
                scale=1.0,
                max_exact_nodes=500,
                num_sampled_skill_pairs=None,
                compute_exact_sbp=True,
                sbp_max_expansions=60_000,
            ),
            DatasetConfig(
                name="epinions",
                seed=17,
                scale=0.08,
                num_sampled_sources=120,
                num_sampled_skill_pairs=1_500,
                compute_exact_sbp=False,
            ),
            DatasetConfig(
                name="wikipedia",
                seed=19,
                scale=0.15,
                num_sampled_sources=150,
                num_sampled_skill_pairs=1_500,
                compute_exact_sbp=False,
            ),
        ),
        team_dataset="epinions",
    )


def fast_config() -> ExperimentConfig:
    """A miniature configuration for tests and quick benchmark runs (seconds)."""
    return ExperimentConfig(
        datasets=(
            DatasetConfig(
                name="slashdot",
                seed=13,
                scale=0.35,
                num_sampled_skill_pairs=200,
                compute_exact_sbp=True,
                sbp_max_expansions=20_000,
            ),
            DatasetConfig(
                name="epinions",
                seed=17,
                scale=0.012,
                num_sampled_sources=60,
                num_sampled_skill_pairs=200,
                compute_exact_sbp=False,
            ),
            DatasetConfig(
                name="wikipedia",
                seed=19,
                scale=0.04,
                num_sampled_sources=60,
                num_sampled_skill_pairs=200,
                compute_exact_sbp=False,
            ),
        ),
        team_dataset="epinions",
        num_tasks=10,
        task_sizes=(2, 5, 10),
        max_seeds=10,
    )
