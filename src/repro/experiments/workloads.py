"""Workload generation and shared per-dataset context for the experiments.

The experiments repeatedly need the same ingredients for a (dataset, relation)
pair: the relation instance, its distance oracle and its skill-compatibility
index, all of which carry caches worth sharing across tasks.
:class:`RelationContext` bundles them, and :class:`DatasetContext` owns one per
relation plus the generated dataset itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compatibility import (
    CompatibilityEngine,
    CompatibilityRelation,
    DistanceOracle,
    SkillCompatibilityIndex,
    make_relation,
)
from repro.datasets import SignedDataset, load_dataset
from repro.experiments.config import DatasetConfig, ExperimentConfig
from repro.skills.task import Task, random_tasks
from repro.utils.rng import ensure_rng


@dataclass
class RelationContext:
    """A compatibility relation plus its cached companions.

    The engine is the batched query front the experiments hand to every
    :class:`~repro.teams.problem.TeamFormationProblem` on this (dataset,
    relation) pair, so candidate filters and distance sweeps share one set of
    caches across all tasks.
    """

    relation: CompatibilityRelation
    oracle: DistanceOracle
    skill_index: SkillCompatibilityIndex
    engine: CompatibilityEngine


class DatasetContext:
    """A generated dataset plus lazily-built relation contexts."""

    def __init__(self, dataset: SignedDataset, config: DatasetConfig) -> None:
        self.dataset = dataset
        self.config = config
        self._relations: Dict[str, RelationContext] = {}

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.dataset.name

    def relation_context(self, relation_name: str) -> RelationContext:
        """Build (or reuse) the relation called ``relation_name`` on this dataset.

        The whole stack (relation, oracle, engine) is built under the dataset
        config's :meth:`~repro.experiments.config.DatasetConfig.execution_policy`,
        so backend choice and worker-pool parallelism flow from one place
        instead of per-layer keyword arguments.
        """
        key = relation_name.upper()
        context = self._relations.get(key)
        if context is None:
            kwargs = {}
            if key in ("SBP", "SBPH"):
                kwargs["max_expansions"] = self.config.sbp_max_expansions
            relation = make_relation(
                key, self.dataset.graph, policy=self.config.execution_policy(), **kwargs
            )
            oracle = DistanceOracle(relation)
            if self.dataset.label_index is not None and key not in ("SBP", "SBPH"):
                # The loader recovered a persisted LabelIndex from the
                # snapshot cache (.store v2 label section): adopt it instead
                # of rebuilding.  Balanced-path oracles keep their own search
                # machinery and reject BFS-distance labels.
                try:
                    oracle.attach_index(self.dataset.label_index)
                except ValueError:
                    pass  # stale dimensions: the oracle rebuilds lazily
            context = RelationContext(
                relation=relation,
                oracle=oracle,
                skill_index=SkillCompatibilityIndex(
                    relation, self.dataset.skills, count_cap=None
                ),
                engine=CompatibilityEngine(relation, oracle=oracle),
            )
            self._relations[key] = context
        return context

    def generate_tasks(self, size: int, count: int, seed: int) -> List[Task]:
        """Generate ``count`` random tasks of ``size`` skills over this dataset."""
        return random_tasks(self.dataset.skills, size=size, count=count, seed=seed)


def build_dataset_context(config: ExperimentConfig, name: str) -> DatasetContext:
    """Generate the dataset called ``name`` according to ``config``."""
    dataset_config = config.dataset(name)
    dataset = load_dataset(
        dataset_config.name, seed=dataset_config.seed, scale=dataset_config.scale
    )
    return DatasetContext(dataset, dataset_config)


def build_all_dataset_contexts(config: ExperimentConfig) -> Dict[str, DatasetContext]:
    """Generate every configured dataset, keyed by name."""
    return {name: build_dataset_context(config, name) for name in config.dataset_names}
