"""Experiment F2 — Figure 2: team-formation success rate and cost.

Four panels, all on the team dataset (Epinions in the paper):

* **(a)** percentage of tasks (k = 5) for which each algorithm (LCMD, LCMC,
  RANDOM) finds a compatible team, per compatibility relation, together with
  the MAX upper bound (tasks whose skills are pairwise compatible);
* **(b)** average team diameter of the solved tasks, per algorithm and
  relation;
* **(c)** percentage of solved tasks as the task size k grows (LCMD only);
* **(d)** average team diameter as the task size grows (LCMD only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compatibility.skill_compat import task_has_compatible_skills
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.workloads import DatasetContext, build_dataset_context
from repro.skills.task import Task
from repro.teams.algorithms import run_algorithm
from repro.teams.problem import TeamFormationProblem, TeamFormationResult
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table


@dataclass(frozen=True)
class AlgorithmSeries:
    """Aggregate outcome of one algorithm over a batch of tasks."""

    algorithm: str
    relation: str
    tasks: int
    solved: int
    average_diameter: float

    @property
    def solved_pct(self) -> float:
        """Percentage of tasks solved."""
        if self.tasks == 0:
            return 0.0
        return 100.0 * self.solved / self.tasks


@dataclass
class Figure2ABResult:
    """Panels (a) and (b): per-relation, per-algorithm aggregates at fixed k."""

    dataset: str
    task_size: int
    relations: Tuple[str, ...]
    algorithms: Tuple[str, ...]
    #: relation -> algorithm -> series.
    series: Dict[str, Dict[str, AlgorithmSeries]] = field(default_factory=dict)
    #: relation -> MAX upper bound (percentage of tasks with compatible skills).
    max_upper_bound: Dict[str, float] = field(default_factory=dict)

    def as_text(self) -> str:
        """Render panels (a) and (b) as two text tables."""
        headers = ["relation"] + [f"{algo} %solved" for algo in self.algorithms] + ["MAX %"]
        solved_rows = []
        for relation in self.relations:
            row: List[object] = [relation]
            for algorithm in self.algorithms:
                series = self.series[relation][algorithm]
                row.append(round(series.solved_pct, 1))
            row.append(round(self.max_upper_bound.get(relation, 0.0), 1))
            solved_rows.append(row)
        text_a = format_table(
            headers,
            solved_rows,
            title=f"Figure 2(a): % of solved tasks (dataset={self.dataset}, k={self.task_size})",
        )

        headers_b = ["relation"] + [f"{algo} diameter" for algo in self.algorithms]
        diameter_rows = []
        for relation in self.relations:
            row = [relation]
            for algorithm in self.algorithms:
                series = self.series[relation][algorithm]
                row.append(round(series.average_diameter, 2))
            diameter_rows.append(row)
        text_b = format_table(
            headers_b,
            diameter_rows,
            title=f"Figure 2(b): average team diameter (dataset={self.dataset}, k={self.task_size})",
        )
        return text_a + "\n\n" + text_b


@dataclass
class Figure2CDResult:
    """Panels (c) and (d): LCMD success rate and diameter versus task size."""

    dataset: str
    algorithm: str
    relations: Tuple[str, ...]
    task_sizes: Tuple[int, ...]
    #: relation -> task size -> series.
    series: Dict[str, Dict[int, AlgorithmSeries]] = field(default_factory=dict)

    def as_text(self) -> str:
        """Render panels (c) and (d) as two text tables."""
        headers = ["relation"] + [f"k={k} %solved" for k in self.task_sizes]
        solved_rows = []
        for relation in self.relations:
            row: List[object] = [relation]
            for k in self.task_sizes:
                row.append(round(self.series[relation][k].solved_pct, 1))
            solved_rows.append(row)
        text_c = format_table(
            headers,
            solved_rows,
            title=f"Figure 2(c): % solved vs task size ({self.algorithm}, dataset={self.dataset})",
        )

        headers_d = ["relation"] + [f"k={k} diameter" for k in self.task_sizes]
        diameter_rows = []
        for relation in self.relations:
            row = [relation]
            for k in self.task_sizes:
                row.append(round(self.series[relation][k].average_diameter, 2))
            diameter_rows.append(row)
        text_d = format_table(
            headers_d,
            diameter_rows,
            title=f"Figure 2(d): average diameter vs task size ({self.algorithm}, dataset={self.dataset})",
        )
        return text_c + "\n\n" + text_d


def _run_batch(
    context: DatasetContext,
    relation_name: str,
    algorithm: str,
    tasks: Sequence[Task],
    config: ExperimentConfig,
) -> AlgorithmSeries:
    """Run one algorithm over a batch of tasks under one relation."""
    relation_context = context.relation_context(relation_name)
    rng = ensure_rng(config.workload_seed)
    solved = 0
    diameters: List[float] = []
    for task in tasks:
        problem = TeamFormationProblem(
            context.dataset.graph,
            context.dataset.skills,
            relation_context.relation,
            task,
            skill_index=relation_context.skill_index,
            engine=relation_context.engine,
        )
        result: TeamFormationResult = run_algorithm(
            algorithm,
            problem,
            max_seeds=config.max_seeds,
            seed=rng,
        )
        if result.solved:
            solved += 1
            diameters.append(result.cost)
    average_diameter = sum(diameters) / len(diameters) if diameters else 0.0
    return AlgorithmSeries(
        algorithm=algorithm,
        relation=relation_name,
        tasks=len(tasks),
        solved=solved,
        average_diameter=average_diameter,
    )


def _max_upper_bound(
    context: DatasetContext, relation_name: str, tasks: Sequence[Task]
) -> float:
    """Percentage of tasks whose skills are pairwise compatible (the MAX bar)."""
    from repro.compatibility import SkillCompatibilityIndex

    relation = context.relation_context(relation_name).relation
    index = SkillCompatibilityIndex(relation, context.dataset.skills, count_cap=1)
    compatible_tasks = sum(
        1 for task in tasks if task_has_compatible_skills(index, task.skills)
    )
    if not tasks:
        return 0.0
    return 100.0 * compatible_tasks / len(tasks)


def run_figure2ab(
    config: Optional[ExperimentConfig] = None,
    context: Optional[DatasetContext] = None,
    tasks: Optional[Sequence[Task]] = None,
) -> Figure2ABResult:
    """Panels (a) and (b): compare LCMD / LCMC / RANDOM at fixed task size."""
    config = config or default_config()
    context = context or build_dataset_context(config, config.team_dataset)
    if tasks is None:
        tasks = context.generate_tasks(
            size=config.task_size, count=config.num_tasks, seed=config.workload_seed
        )
    result = Figure2ABResult(
        dataset=context.name,
        task_size=config.task_size,
        relations=tuple(config.team_relations),
        algorithms=tuple(config.team_algorithms),
    )
    for relation_name in config.team_relations:
        result.series[relation_name] = {}
        for algorithm in config.team_algorithms:
            result.series[relation_name][algorithm] = _run_batch(
                context, relation_name, algorithm, tasks, config
            )
        result.max_upper_bound[relation_name] = _max_upper_bound(
            context, relation_name, tasks
        )
    return result


def run_figure2cd(
    config: Optional[ExperimentConfig] = None,
    context: Optional[DatasetContext] = None,
    algorithm: str = "LCMD",
) -> Figure2CDResult:
    """Panels (c) and (d): sweep the task size with a single algorithm."""
    config = config or default_config()
    context = context or build_dataset_context(config, config.team_dataset)
    result = Figure2CDResult(
        dataset=context.name,
        algorithm=algorithm,
        relations=tuple(config.team_relations),
        task_sizes=tuple(config.task_sizes),
    )
    for relation_name in config.team_relations:
        result.series[relation_name] = {}
    for task_size in config.task_sizes:
        tasks = context.generate_tasks(
            size=task_size, count=config.num_tasks, seed=config.workload_seed + task_size
        )
        for relation_name in config.team_relations:
            result.series[relation_name][task_size] = _run_batch(
                context, relation_name, algorithm, tasks, config
            )
    return result
