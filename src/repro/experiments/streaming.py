"""Streaming-update workload: edge churn interleaved with team formation.

The paper evaluates team formation over a *fixed* signed network; real
trust/distrust networks mutate continuously.  This workload exercises the
dynamic-graph subsystem end to end: each round applies a batch of random edge
events (additions, removals, sign flips) to the dataset's graph, refreshes
the problem (delta-applied CSR snapshot rebuild + targeted cache
invalidation), and then answers a batch of team-formation queries with the
paper's deterministic algorithms (LCMD / LCMC / RFMD / RFMC by default).

Because every cache in the stack is generation-keyed, the queries after a
churn batch are answered from whatever cached work survived the batch —
results are identical to a cold engine on a freshly built copy of the mutated
graph (asserted by ``tests/test_streaming.py``), but the incremental cost per
round is far below a cold start.

Run it via ``repro-teams streaming <dataset>`` or
:func:`run_streaming` directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.compatibility import (
    CompatibilityEngine,
    DistanceOracle,
    SkillCompatibilityIndex,
    make_relation,
)
from repro.datasets import load_dataset
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph
from repro.skills.task import Task, random_tasks
from repro.teams import TeamFormationProblem, run_algorithm
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table
from repro.utils.validation import require_positive, require_probability


@dataclass(frozen=True)
class StreamingConfig:
    """Parameters of one streaming run."""

    #: Dataset name (see :func:`repro.datasets.available`).
    dataset: str = "epinions"
    #: Generation seed / scale overrides for the dataset.
    dataset_seed: Optional[int] = None
    scale: Optional[float] = None
    #: Compatibility relation the queries run under.
    relation: str = "SPO"
    #: Backend for the relation (``"auto"``, ``"dict"`` or ``"csr"``).
    backend: str = "auto"
    #: Worker processes for the per-source kernel sweeps (0/1 = serial, the
    #: default; >= 2 dispatches to a persistent process pool whose shipped
    #: snapshots are invalidated automatically on every generation bump).
    workers: int = 0
    #: Sources per worker task (None derives one per dispatch).
    chunk_size: Optional[int] = None
    #: Directory for file-backed snapshot publishing (None = shared memory;
    #: see :attr:`repro.exec.ExecutionPolicy.snapshot_store`).
    snapshot_store: Optional[str] = None
    #: Deterministic algorithms evaluated each round.
    algorithms: Tuple[str, ...] = ("LCMD", "LCMC", "RFMD", "RFMC")
    #: Number of churn+query rounds.
    num_rounds: int = 8
    #: Edge events applied per round.
    churn_per_round: int = 40
    #: Fractions of the churn batch that add / remove edges (the remainder
    #: flips signs in place).
    add_fraction: float = 0.4
    remove_fraction: float = 0.3
    #: Probability that an added edge is negative.
    negative_fraction: float = 0.2
    #: Team-formation queries per round and their task size.
    tasks_per_round: int = 2
    task_size: int = 3
    #: Cap on Algorithm 2 seeds per query (None = all).
    max_seeds: Optional[int] = 10
    #: Master seed for churn and task generation.
    seed: int = 2020
    #: Require the whole run to stay dict-free: the dataset graph must be a
    #: :class:`~repro.signed.lazy.CSRBackedSignedGraph` and the run fails if
    #: any code path materialises its adjacency dicts.  ``None`` (the
    #: default) enables the check automatically whenever the dataset loads
    #: as a CSR facade (e.g. ``million`` or ``csr_only`` loader datasets);
    #: ``True`` additionally fails if the dataset is dict-backed.
    csr_only: Optional[bool] = None


@dataclass(frozen=True)
class StreamingQueryResult:
    """One (algorithm, task) answer within a round."""

    algorithm: str
    task: Task
    solved: bool
    cost: float
    team_size: int
    seconds: float


@dataclass(frozen=True)
class StreamingRoundResult:
    """Churn applied and queries answered in one round."""

    round_index: int
    edges_added: int
    edges_removed: int
    signs_flipped: int
    #: Wall-clock of ``problem.refresh()`` after the churn batch (delta-applied
    #: snapshot rebuild + targeted cache invalidation).
    refresh_seconds: float
    #: Graph generation after the round's churn.
    generation: int
    queries: Tuple[StreamingQueryResult, ...]


@dataclass
class StreamingReport:
    """All rounds of one streaming run."""

    config: StreamingConfig
    rounds: List[StreamingRoundResult] = field(default_factory=list)

    def as_text(self) -> str:
        """Render one row per (round, algorithm) plus a per-algorithm summary."""
        rows = []
        for round_result in self.rounds:
            per_algorithm: dict = {}
            for query in round_result.queries:
                per_algorithm.setdefault(query.algorithm, []).append(query)
            for algorithm, queries in per_algorithm.items():
                solved = sum(1 for query in queries if query.solved)
                costs = [query.cost for query in queries if query.solved]
                rows.append(
                    [
                        round_result.round_index,
                        f"+{round_result.edges_added}/-{round_result.edges_removed}"
                        f"/~{round_result.signs_flipped}",
                        algorithm,
                        f"{solved}/{len(queries)}",
                        f"{sum(costs) / len(costs):.2f}" if costs else "-",
                        f"{sum(query.seconds for query in queries):.3f}",
                    ]
                )
        headers = ["round", "churn", "algorithm", "solved", "avg cost", "query s"]
        title = (
            f"Streaming workload on {self.config.dataset} under "
            f"{self.config.relation} ({self.config.num_rounds} rounds, "
            f"{self.config.churn_per_round} edge events/round)"
        )
        table = format_table(headers, rows, title=title)
        summary_lines = []
        totals: dict = {}
        for round_result in self.rounds:
            for query in round_result.queries:
                record = totals.setdefault(query.algorithm, [0, 0, 0.0])
                record[0] += query.solved
                record[1] += 1
                record[2] += query.seconds
        for algorithm, (solved, asked, seconds) in totals.items():
            summary_lines.append(
                f"  {algorithm}: solved {solved}/{asked}, total query time {seconds:.3f}s"
            )
        refresh_total = sum(round_result.refresh_seconds for round_result in self.rounds)
        summary_lines.append(f"  refresh (snapshot + invalidation): {refresh_total:.3f}s")
        return table + "\nTotals\n" + "\n".join(summary_lines)


class _ListEdgeCandidates:
    """Candidate edge pairs for the churn sampler, dict-backend reference.

    A plain list of ``(u, v)`` tuples in :meth:`SignedGraph.edges` order,
    maintained exactly (append on add, swap-pop on remove), so after any
    number of events it is still precisely the graph's edge set.
    """

    __slots__ = ("pairs",)

    def __init__(self, graph: SignedGraph) -> None:
        self.pairs = [(edge.u, edge.v) for edge in graph.edges()]

    def __len__(self) -> int:
        return len(self.pairs)

    def get(self, position: int):
        return self.pairs[position]

    def swap_pop(self, position: int) -> None:
        pairs = self.pairs
        pairs[position] = pairs[-1]
        pairs.pop()

    def append(self, u, v) -> None:
        self.pairs.append((u, v))


class _PlaneEdgeCandidates:
    """Array-backed candidate edges, built vectorised from the CSR planes.

    One ``row < col`` mask over the planes replaces the O(m) Python edge
    enumeration.  ``edge_arrays`` order equals the dict ``edges()`` order and
    the list operations mirror :class:`_ListEdgeCandidates` position for
    position, so a run sampled through this variant draws the exact same
    event sequence as the dict-backend reference under the same ``rng``.
    """

    __slots__ = ("us", "vs", "count", "nodes", "index")

    def __init__(self, csr) -> None:
        us, vs, _signs = csr.edge_arrays()
        self.us = us
        self.vs = vs
        self.count = len(us)
        self.nodes = csr._nodes
        self.index = csr._index

    def __len__(self) -> int:
        return self.count

    def get(self, position: int):
        nodes = self.nodes
        return nodes[self.us[position]], nodes[self.vs[position]]

    def swap_pop(self, position: int) -> None:
        last = self.count - 1
        self.us[position] = self.us[last]
        self.vs[position] = self.vs[last]
        self.count = last

    def append(self, u, v) -> None:
        position = self.count
        if position == len(self.us):
            import numpy as np

            capacity = max(64, 2 * len(self.us))
            grown_us = np.empty(capacity, dtype=self.us.dtype)
            grown_vs = np.empty(capacity, dtype=self.vs.dtype)
            grown_us[:position] = self.us[:position]
            grown_vs[:position] = self.vs[:position]
            self.us, self.vs = grown_us, grown_vs
        self.us[position] = self.index[u]
        self.vs[position] = self.index[v]
        self.count = position + 1


def _edge_candidates(graph: SignedGraph):
    """The candidate edge list for ``graph``, reused across churn calls.

    Cached on the graph keyed by its generation: consecutive churn rounds
    with no interleaved foreign mutation skip the O(m) rebuild entirely (on
    both backends — the dict path, too, only re-enumerates after a cache
    miss).  CSR-preferring graphs (the dict-free facade) build the list
    vectorised from the planes instead of enumerating Python edge objects.
    """
    cached = getattr(graph, "_churn_candidates", None)
    if cached is not None and cached[0] == graph.generation:
        return cached[1]
    if getattr(graph, "prefers_csr", False):
        return _PlaneEdgeCandidates(graph.csr_view())
    return _ListEdgeCandidates(graph)


def apply_edge_churn(
    graph: SignedGraph,
    count: int,
    rng,
    add_fraction: float = 0.4,
    remove_fraction: float = 0.3,
    negative_fraction: float = 0.2,
) -> Tuple[int, int, int]:
    """Apply ``count`` random edge events to ``graph``; returns the op counts.

    Events are drawn independently: with probability ``add_fraction`` a new
    edge between two random non-adjacent nodes is added (negative with
    probability ``negative_fraction``), with ``remove_fraction`` a random
    existing edge is removed, otherwise a random existing edge flips its
    sign.  Nodes are never added or removed, so skill assignments (and task
    feasibility) are preserved.  All randomness comes from ``rng``, so a
    round is reproducible from the workload seed.

    The candidate edge list is maintained incrementally and cached on the
    graph across calls (invalidated by generation), so a streaming run pays
    the edge enumeration once, not once per round — and on a CSR-preferring
    graph that one enumeration is a vectorised mask over the planes rather
    than a Python loop.  The two backends draw from candidate lists that are
    equal position for position, so the same ``rng`` produces the same event
    sequence on the dict graph and the dict-free facade (the bit-identity
    contract ``tests/test_streaming.py`` asserts).
    """
    require_probability(add_fraction, "add_fraction")
    require_probability(remove_fraction, "remove_fraction")
    if add_fraction + remove_fraction > 1.0:
        raise ValueError("add_fraction + remove_fraction must be at most 1")
    nodes = graph.nodes()
    edges = _edge_candidates(graph)
    added = removed = flipped = 0
    for _ in range(count):
        roll = rng.random()
        if roll < add_fraction and len(nodes) >= 2:
            for _attempt in range(32):
                u, v = rng.sample(nodes, 2)
                if not graph.has_edge(u, v):
                    sign = NEGATIVE if rng.random() < negative_fraction else POSITIVE
                    graph.add_edge(u, v, sign)
                    edges.append(u, v)
                    added += 1
                    break
        elif roll < add_fraction + remove_fraction and len(edges):
            position = rng.randrange(len(edges))
            u, v = edges.get(position)
            edges.swap_pop(position)
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
                removed += 1
        elif len(edges):
            u, v = edges.get(rng.randrange(len(edges)))
            if graph.has_edge(u, v):
                current = graph.sign(u, v)
                graph.set_sign(u, v, POSITIVE if current == NEGATIVE else NEGATIVE)
                flipped += 1
    graph._churn_candidates = (graph.generation, edges)
    return added, removed, flipped


def run_streaming(
    config: Optional[StreamingConfig] = None, verbose: bool = False
) -> StreamingReport:
    """Run the streaming workload described by ``config``.

    One relation / oracle / engine / skill index is built up front and shared
    by every query of every round, exactly like a long-lived serving process:
    the generation-keyed caches carry whatever survives each churn batch into
    the next round.
    """
    config = config or StreamingConfig()
    require_positive(config.num_rounds, "num_rounds")
    require_positive(config.tasks_per_round, "tasks_per_round")
    dataset = load_dataset(
        config.dataset, seed=config.dataset_seed, scale=config.scale
    )
    graph = dataset.graph
    from repro.signed.lazy import CSRBackedSignedGraph

    if config.csr_only and not isinstance(graph, CSRBackedSignedGraph):
        raise ValueError(
            "csr_only streaming requires a CSR-backed dataset graph "
            f"(dataset {config.dataset!r} loaded a "
            f"{type(graph).__name__}); use a csr_only loader or the "
            "'million' dataset"
        )
    csr_only = (
        isinstance(graph, CSRBackedSignedGraph)
        if config.csr_only is None
        else config.csr_only
    )
    from repro.exec import ExecutionPolicy

    policy = ExecutionPolicy(
        backend=config.backend,
        workers=config.workers,
        chunk_size=config.chunk_size,
        snapshot_store=config.snapshot_store,
    )
    relation = make_relation(config.relation, graph, policy=policy)
    oracle = DistanceOracle(relation)
    engine = CompatibilityEngine(relation, oracle=oracle)
    skill_index = SkillCompatibilityIndex(relation, dataset.skills, count_cap=None)
    rng = ensure_rng(config.seed)
    report = StreamingReport(config=config)
    for round_index in range(config.num_rounds):
        added, removed, flipped = apply_edge_churn(
            graph,
            config.churn_per_round,
            rng,
            add_fraction=config.add_fraction,
            remove_fraction=config.remove_fraction,
            negative_fraction=config.negative_fraction,
        )
        tasks = random_tasks(
            dataset.skills,
            size=config.task_size,
            count=config.tasks_per_round,
            seed=config.seed + 7919 * (round_index + 1),
        )
        queries: List[StreamingQueryResult] = []
        refresh_seconds = 0.0
        for task in tasks:
            problem = TeamFormationProblem(
                graph,
                dataset.skills,
                relation,
                task,
                engine=engine,
                skill_index=skill_index,
            )
            start = time.perf_counter()
            problem.refresh()
            refresh_seconds += time.perf_counter() - start
            for algorithm in config.algorithms:
                start = time.perf_counter()
                result = run_algorithm(
                    algorithm,
                    problem,
                    max_seeds=config.max_seeds,
                    seed=config.seed + round_index,
                )
                elapsed = time.perf_counter() - start
                queries.append(
                    StreamingQueryResult(
                        algorithm=algorithm,
                        task=task,
                        solved=result.solved,
                        cost=result.cost,
                        team_size=result.team_size,
                        seconds=elapsed,
                    )
                )
        report.rounds.append(
            StreamingRoundResult(
                round_index=round_index,
                edges_added=added,
                edges_removed=removed,
                signs_flipped=flipped,
                refresh_seconds=refresh_seconds,
                generation=graph.generation,
                queries=tuple(queries),
            )
        )
        if verbose:
            print(
                f"[streaming] round {round_index}: +{added}/-{removed}/~{flipped} "
                f"edges, {len(queries)} queries, generation {graph.generation}",
                flush=True,
            )
        if csr_only and graph.materialised:
            raise RuntimeError(
                f"csr_only streaming run materialised the dict adjacency "
                f"during round {round_index} — a dict-only code path leaked "
                "into the CSR-native stack"
            )
    return report
