"""Experiment T3 — Table 3: comparison with unsigned team formation.

The classic RarestFirst algorithm (Lappas et al.) is run on two unsigned
projections of the team-formation dataset — *ignore sign* and *delete
negative* — over the same random tasks used by Figure 2 (task size 5).  For
every compatibility relation the experiment reports the percentage of the
returned teams that happen to be compatible.  The paper's point is that this
percentage is low, especially for the strict relations (0 % for SPA).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.workloads import DatasetContext, build_dataset_context
from repro.skills.task import Task
from repro.teams.baselines import PROJECTION_NAMES, run_unsigned_baseline
from repro.teams.validation import fraction_of_compatible_teams
from repro.utils.tables import format_table


@dataclass
class Table3Result:
    """Percentage of compatible baseline teams, per projection and relation."""

    dataset: str
    relations: Tuple[str, ...]
    #: projection -> relation -> percentage of compatible teams.
    percentages: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: projection -> number of tasks the unsigned baseline solved at all.
    solved_tasks: Dict[str, int] = field(default_factory=dict)
    num_tasks: int = 0

    def as_text(self) -> str:
        """Render in the paper's Table-3 layout."""
        headers = ["projection"] + list(self.relations)
        rows = []
        for projection in PROJECTION_NAMES:
            row: List[object] = [projection.replace("_", " ")]
            for relation in self.relations:
                value = self.percentages.get(projection, {}).get(relation)
                row.append(None if value is None else f"{value:.0f}%")
            rows.append(row)
        return format_table(
            headers,
            rows,
            title=f"Table 3 (dataset={self.dataset}, tasks={self.num_tasks}, k=5)",
        )


def run_table3(
    config: Optional[ExperimentConfig] = None,
    context: Optional[DatasetContext] = None,
    tasks: Optional[Sequence[Task]] = None,
) -> Table3Result:
    """Run the unsigned baseline comparison on the configured team dataset."""
    config = config or default_config()
    context = context or build_dataset_context(config, config.team_dataset)
    if tasks is None:
        tasks = context.generate_tasks(
            size=config.task_size, count=config.num_tasks, seed=config.workload_seed
        )

    result = Table3Result(
        dataset=context.name,
        relations=tuple(config.team_relations),
        num_tasks=len(tasks),
    )
    for projection in PROJECTION_NAMES:
        baseline_results = run_unsigned_baseline(
            context.dataset.graph, context.dataset.skills, tasks, projection
        )
        teams = [entry.team for entry in baseline_results]
        result.solved_tasks[projection] = sum(1 for entry in baseline_results if entry.solved)
        result.percentages[projection] = {}
        for relation_name in config.team_relations:
            relation = context.relation_context(relation_name).relation
            fraction = fraction_of_compatible_teams(teams, relation)
            result.percentages[projection][relation_name] = 100.0 * fraction
    return result
