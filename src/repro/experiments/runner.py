"""Run every experiment of the paper's evaluation section and print the results.

``python -m repro.experiments`` (or ``repro-teams reproduce`` via the CLI)
runs Table 1, Table 2, Table 3 and the four panels of Figure 2 with a shared
set of generated datasets, and prints each artefact in a layout mirroring the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.config import ExperimentConfig, default_config, fast_config
from repro.experiments.figure2 import (
    Figure2ABResult,
    Figure2CDResult,
    run_figure2ab,
    run_figure2cd,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.workloads import DatasetContext, build_all_dataset_contexts
from repro.utils.timing import Timer


@dataclass
class ReproductionReport:
    """All experiment results plus wall-clock timings."""

    table1: Table1Result
    table2: Table2Result
    table3: Table3Result
    figure2ab: Figure2ABResult
    figure2cd: Figure2CDResult
    timings: Dict[str, float]

    def as_text(self) -> str:
        """Render every artefact, separated by blank lines."""
        sections = [
            self.table1.as_text(),
            self.table2.as_text(),
            self.table3.as_text(),
            self.figure2ab.as_text(),
            self.figure2cd.as_text(),
            self._timings_text(),
        ]
        return "\n\n".join(sections)

    def _timings_text(self) -> str:
        lines = ["Timings (seconds)"]
        for name, seconds in self.timings.items():
            lines.append(f"  {name}: {seconds:.1f}")
        return "\n".join(lines)


def run_all(config: Optional[ExperimentConfig] = None, verbose: bool = True) -> ReproductionReport:
    """Run the full reproduction and return a :class:`ReproductionReport`."""
    config = config or default_config()
    timings: Dict[str, float] = {}

    with Timer() as timer:
        contexts = build_all_dataset_contexts(config)
    timings["dataset generation"] = timer.elapsed

    def announce(name: str) -> None:
        if verbose:
            print(f"[repro] running {name} ...", flush=True)

    announce("Table 1")
    with Timer() as timer:
        table1 = run_table1(config, contexts)
    timings["table 1"] = timer.elapsed

    announce("Table 2")
    with Timer() as timer:
        table2 = run_table2(config, contexts)
    timings["table 2"] = timer.elapsed

    team_context = contexts[config.team_dataset]
    tasks = team_context.generate_tasks(
        size=config.task_size, count=config.num_tasks, seed=config.workload_seed
    )

    announce("Table 3")
    with Timer() as timer:
        table3 = run_table3(config, team_context, tasks)
    timings["table 3"] = timer.elapsed

    announce("Figure 2(a)/(b)")
    with Timer() as timer:
        figure2ab = run_figure2ab(config, team_context, tasks)
    timings["figure 2(a)(b)"] = timer.elapsed

    announce("Figure 2(c)/(d)")
    with Timer() as timer:
        figure2cd = run_figure2cd(config, team_context)
    timings["figure 2(c)(d)"] = timer.elapsed

    report = ReproductionReport(
        table1=table1,
        table2=table2,
        table3=table3,
        figure2ab=figure2ab,
        figure2cd=figure2cd,
        timings=timings,
    )
    if verbose:
        print(report.as_text())
    return report


def main() -> None:
    """Command-line entry point: ``python -m repro.experiments [--fast]``."""
    import argparse

    parser = argparse.ArgumentParser(description="Reproduce the paper's tables and figures")
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use the miniature configuration (seconds instead of minutes)",
    )
    arguments = parser.parse_args()
    config = fast_config() if arguments.fast else default_config()
    run_all(config)


if __name__ == "__main__":
    main()
