"""Reproductions of every table and figure in the paper's evaluation section."""

from repro.experiments.config import (
    DatasetConfig,
    ExperimentConfig,
    default_config,
    fast_config,
)
from repro.experiments.workloads import (
    DatasetContext,
    RelationContext,
    build_all_dataset_contexts,
    build_dataset_context,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Cell, Table2DatasetResult, Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.figure2 import (
    AlgorithmSeries,
    Figure2ABResult,
    Figure2CDResult,
    run_figure2ab,
    run_figure2cd,
)
from repro.experiments.runner import ReproductionReport, run_all
from repro.experiments.streaming import (
    StreamingConfig,
    StreamingQueryResult,
    StreamingReport,
    StreamingRoundResult,
    apply_edge_churn,
    run_streaming,
)

__all__ = [
    "DatasetConfig",
    "ExperimentConfig",
    "default_config",
    "fast_config",
    "DatasetContext",
    "RelationContext",
    "build_dataset_context",
    "build_all_dataset_contexts",
    "Table1Result",
    "run_table1",
    "Table2Cell",
    "Table2DatasetResult",
    "Table2Result",
    "run_table2",
    "Table3Result",
    "run_table3",
    "AlgorithmSeries",
    "Figure2ABResult",
    "Figure2CDResult",
    "run_figure2ab",
    "run_figure2cd",
    "ReproductionReport",
    "run_all",
    "StreamingConfig",
    "StreamingQueryResult",
    "StreamingReport",
    "StreamingRoundResult",
    "apply_edge_churn",
    "run_streaming",
]
