"""``python -m repro.experiments`` runs the full reproduction."""

from repro.experiments.runner import main

if __name__ == "__main__":
    main()
