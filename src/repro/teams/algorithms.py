"""Named team-formation algorithms (the policy pairings evaluated in the paper).

* **LCMD** — least-compatible skill first, minimum-distance user (the paper's
  best performer on cost).
* **LCMC** — least-compatible skill first, most-compatible user.
* **RFMD** — rarest skill first, minimum-distance user (the signed analogue of
  Lappas et al.'s RarestFirst).
* **RFMC** — rarest skill first, most-compatible user.
* **RANDOM** — least-compatible skill first, random compatible user (the
  paper's RANDOM baseline).

Every algorithm is a thin wrapper around :func:`repro.teams.generic.form_team`
with a fixed pair of policies.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.teams.cost import CostFunction, diameter_cost
from repro.teams.generic import form_team
from repro.teams.policies import (
    LeastCompatibleSkillFirst,
    MinimumDistanceUser,
    MostCompatibleUser,
    RandomUser,
    RarestSkillFirst,
    SkillSelectionPolicy,
    UserSelectionPolicy,
)
from repro.teams.problem import TeamFormationProblem, TeamFormationResult
from repro.utils.rng import RandomState

#: Algorithm name -> (skill policy class, user policy class).
_ALGORITHM_POLICIES: Dict[str, tuple] = {
    "LCMD": (LeastCompatibleSkillFirst, MinimumDistanceUser),
    "LCMC": (LeastCompatibleSkillFirst, MostCompatibleUser),
    "RFMD": (RarestSkillFirst, MinimumDistanceUser),
    "RFMC": (RarestSkillFirst, MostCompatibleUser),
    "RANDOM": (LeastCompatibleSkillFirst, RandomUser),
}

#: Names of the available algorithms, in the order the paper discusses them.
ALGORITHM_NAMES: Sequence[str] = tuple(_ALGORITHM_POLICIES)


def run_algorithm(
    name: str,
    problem: TeamFormationProblem,
    cost_function: CostFunction = diameter_cost,
    max_seeds: Optional[int] = None,
    seed: RandomState = None,
) -> TeamFormationResult:
    """Run the named algorithm on ``problem``.

    ``seed`` feeds the RANDOM user policy (and seed subsampling when
    ``max_seeds`` is set); deterministic algorithms ignore it apart from seed
    subsampling.
    """
    key = name.upper()
    if key not in _ALGORITHM_POLICIES:
        raise KeyError(f"unknown algorithm {name!r}; available: {list(ALGORITHM_NAMES)}")
    skill_policy_class, user_policy_class = _ALGORITHM_POLICIES[key]
    skill_policy: SkillSelectionPolicy = skill_policy_class()
    user_policy: UserSelectionPolicy = user_policy_class(seed=seed)
    return form_team(
        problem,
        skill_policy,
        user_policy,
        cost_function=cost_function,
        max_seeds=max_seeds,
        algorithm_name=key,
        seed=seed,
    )


def lcmd(problem: TeamFormationProblem, **kwargs) -> TeamFormationResult:
    """Least-compatible skill, minimum-distance user."""
    return run_algorithm("LCMD", problem, **kwargs)


def lcmc(problem: TeamFormationProblem, **kwargs) -> TeamFormationResult:
    """Least-compatible skill, most-compatible user."""
    return run_algorithm("LCMC", problem, **kwargs)


def rfmd(problem: TeamFormationProblem, **kwargs) -> TeamFormationResult:
    """Rarest skill, minimum-distance user."""
    return run_algorithm("RFMD", problem, **kwargs)


def rfmc(problem: TeamFormationProblem, **kwargs) -> TeamFormationResult:
    """Rarest skill, most-compatible user."""
    return run_algorithm("RFMC", problem, **kwargs)


def random_team(problem: TeamFormationProblem, **kwargs) -> TeamFormationResult:
    """Random compatible user selection (baseline)."""
    return run_algorithm("RANDOM", problem, **kwargs)
