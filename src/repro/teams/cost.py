"""Communication-cost functions for teams.

The paper uses the *diameter* cost — the largest distance between any two team
members — computed with the distance definition of the active compatibility
relation.  A sum-of-distances cost is provided as well because it is the other
classic objective from Lappas et al. and is used by one of the ablation
benchmarks.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from repro.compatibility.distance import DistanceOracle
from repro.signed.graph import Node

#: A cost function maps (oracle, team) to a non-negative float (or ``inf``).
CostFunction = Callable[[DistanceOracle, Iterable[Node]], float]


def diameter_cost(oracle: DistanceOracle, team: Iterable[Node]) -> float:
    """Largest pairwise distance within the team (the paper's ``Cost(X)``)."""
    return oracle.max_pairwise_distance(team)


def sum_distance_cost(oracle: DistanceOracle, team: Iterable[Node]) -> float:
    """Sum of pairwise distances within the team (alternative objective)."""
    return oracle.sum_pairwise_distance(team)


def cardinality_cost(oracle: DistanceOracle, team: Iterable[Node]) -> float:
    """Number of team members — useful as a tie-breaking or ablation objective."""
    return float(len(list(team)))


#: Cost functions by name, for configuration files and the CLI.
COST_FUNCTIONS: Dict[str, CostFunction] = {
    "diameter": diameter_cost,
    "sum_distance": sum_distance_cost,
    "cardinality": cardinality_cost,
}


def get_cost_function(name: str) -> CostFunction:
    """Look up a cost function by name (case-insensitive)."""
    key = name.lower()
    if key not in COST_FUNCTIONS:
        raise KeyError(
            f"unknown cost function {name!r}; available: {sorted(COST_FUNCTIONS)}"
        )
    return COST_FUNCTIONS[key]
