"""Unsigned team-formation baseline (Lappas, Liu & Terzi, KDD 2009).

The paper's Table 3 compares TFSN against the classic *RarestFirst* algorithm
run on two unsigned projections of the signed network:

* **ignore sign** — keep every edge, drop the labels;
* **delete negative** — keep only the positive edges.

RarestFirst (for the diameter cost) works as follows: pick the rarest required
skill; for every user owning it, build a team by adding, for each other
required skill, the owner closest to the seed; return the team with the
smallest diameter.  The resulting teams are then checked for compatibility
under each signed relation — the point of Table 3 being that most of them are
*not* compatible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

import networkx as nx

from repro.signed.convert import positive_subgraph, unsigned_copy
from repro.signed.graph import Node, SignedGraph
from repro.skills.assignment import Skill, SkillAssignment
from repro.skills.task import Task

#: Names of the two unsigned projections used by Table 3.
PROJECTION_NAMES: Sequence[str] = ("ignore_sign", "delete_negative")


def project_graph(graph: SignedGraph, projection: str) -> nx.Graph:
    """Build one of the two unsigned projections of ``graph``."""
    if projection == "ignore_sign":
        return unsigned_copy(graph)
    if projection == "delete_negative":
        return positive_subgraph(graph)
    raise ValueError(
        f"unknown projection {projection!r}; expected one of {list(PROJECTION_NAMES)}"
    )


@dataclass(frozen=True)
class UnsignedTeamResult:
    """Outcome of the unsigned RarestFirst baseline on one task."""

    task: Task
    team: Optional[FrozenSet[Node]]
    diameter: float

    @property
    def solved(self) -> bool:
        """True iff a covering team was found on the unsigned graph."""
        return self.team is not None


class RarestFirstBaseline:
    """RarestFirst of Lappas et al. on an unsigned ``networkx`` graph.

    Distances are ordinary BFS distances on the unsigned graph; per-source
    distance maps are cached because the seed loop reuses them heavily.
    """

    def __init__(self, graph: nx.Graph, assignment: SkillAssignment) -> None:
        self._graph = graph
        self._assignment = assignment
        self._distance_cache: Dict[Node, Dict[Node, int]] = {}

    def solve(self, task: Task) -> UnsignedTeamResult:
        """Run RarestFirst for ``task`` and return the best team found."""
        skills = list(task.skills)
        holders = {skill: self._holders(skill) for skill in skills}
        if any(not users for users in holders.values()):
            return UnsignedTeamResult(task=task, team=None, diameter=float("inf"))

        rarest = min(skills, key=lambda skill: (len(holders[skill]), str(skill)))
        best_team: Optional[FrozenSet[Node]] = None
        best_diameter = float("inf")
        for seed in sorted(holders[rarest], key=repr):
            team = self._team_for_seed(seed, skills, holders)
            if team is None:
                continue
            team_diameter = self._team_diameter(team)
            if team_diameter < best_diameter:
                best_diameter = team_diameter
                best_team = team
        return UnsignedTeamResult(task=task, team=best_team, diameter=best_diameter)

    # --------------------------------------------------------------- internals

    def _holders(self, skill: Skill) -> List[Node]:
        try:
            users = self._assignment.users_with(skill)
        except KeyError:
            return []
        return [user for user in users if self._graph.has_node(user)]

    def _team_for_seed(
        self,
        seed: Node,
        skills: Iterable[Skill],
        holders: Dict[Skill, List[Node]],
    ) -> Optional[FrozenSet[Node]]:
        distances = self._distances_from(seed)
        team: Set[Node] = {seed}
        covered = self._assignment.skills_of(seed)
        for skill in sorted(skills, key=str):
            if skill in covered:
                continue
            reachable = [user for user in holders[skill] if user in distances]
            if not reachable:
                return None
            closest = min(reachable, key=lambda user: (distances[user], repr(user)))
            team.add(closest)
            covered = covered | self._assignment.skills_of(closest)
        return frozenset(team)

    def _team_diameter(self, team: FrozenSet[Node]) -> float:
        best = 0.0
        members = sorted(team, key=repr)
        for index, u in enumerate(members):
            distances = self._distances_from(u)
            for v in members[index + 1 :]:
                if v not in distances:
                    return float("inf")
                best = max(best, float(distances[v]))
        return best

    def _distances_from(self, source: Node) -> Dict[Node, int]:
        cached = self._distance_cache.get(source)
        if cached is None:
            cached = dict(nx.single_source_shortest_path_length(self._graph, source))
            self._distance_cache[source] = cached
        return cached


def run_unsigned_baseline(
    graph: SignedGraph,
    assignment: SkillAssignment,
    tasks: Iterable[Task],
    projection: str,
) -> List[UnsignedTeamResult]:
    """Run RarestFirst on the chosen unsigned projection for every task."""
    baseline = RarestFirstBaseline(project_graph(graph, projection), assignment)
    return [baseline.solve(task) for task in tasks]
