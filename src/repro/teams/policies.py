"""Skill-selection and user-selection policies for Algorithm 2.

Algorithm 2 of the paper has two placeholders:

* which uncovered **skill** to cover next — *rarest first* (as in Lappas et
  al.) or *least compatible first* (smallest compatibility degree ``cd(s)``);
* which compatible **user** with that skill to add — *minimum distance* to the
  current team, *most compatible* with the users still needed, or *random*.

Policies are small stateless objects so the generic algorithm can be composed
with any pair of them; the named algorithms of the paper (LCMD, LCMC, ...) are
specific pairings defined in :mod:`repro.teams.algorithms`.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set

from repro.signed.graph import Node
from repro.skills.assignment import Skill
from repro.teams.problem import TeamFormationProblem
from repro.utils.rng import RandomState, ensure_rng


class SkillSelectionPolicy(abc.ABC):
    """Chooses which uncovered skill Algorithm 2 should cover next."""

    name: str = "abstract-skill-policy"

    @abc.abstractmethod
    def select(
        self,
        problem: TeamFormationProblem,
        uncovered_skills: Set[Skill],
        team: Sequence[Node],
    ) -> Skill:
        """Return one skill from ``uncovered_skills`` (which is never empty)."""

    @staticmethod
    def _deterministic(skills: Iterable[Skill]) -> List[Skill]:
        """Sort skills by name so ties break deterministically."""
        return sorted(skills, key=str)


class RarestSkillFirst(SkillSelectionPolicy):
    """Pick the uncovered skill owned by the fewest users (as in Lappas et al.)."""

    name = "rarest-skill"

    def select(
        self,
        problem: TeamFormationProblem,
        uncovered_skills: Set[Skill],
        team: Sequence[Node],
    ) -> Skill:
        ordered = self._deterministic(uncovered_skills)
        return min(ordered, key=problem.assignment.skill_frequency)


class LeastCompatibleSkillFirst(SkillSelectionPolicy):
    """Pick the uncovered skill with the smallest compatibility degree ``cd(s)``.

    The degree is computed against the task's skills only (the skills the team
    still has to reconcile), which keeps the policy cheap and focuses it on the
    actual bottleneck: the skill whose owners are hardest to pair with owners
    of the other required skills.
    """

    name = "least-compatible-skill"

    def select(
        self,
        problem: TeamFormationProblem,
        uncovered_skills: Set[Skill],
        team: Sequence[Node],
    ) -> Skill:
        index = problem.skill_index
        task_skills = list(problem.task.skills)
        ordered = self._deterministic(uncovered_skills)
        return min(
            ordered,
            key=lambda skill: (index.skill_degree(skill, others=task_skills), str(skill)),
        )


class UserSelectionPolicy(abc.ABC):
    """Chooses which compatible candidate user to add for the selected skill."""

    name: str = "abstract-user-policy"

    #: Whether :meth:`select` issues distance-to-team queries; Algorithm 2
    #: uses this to decide if seed warming should prefetch distance maps too.
    uses_team_distances: bool = False

    def __init__(self, seed: RandomState = None) -> None:
        self._rng = ensure_rng(seed)

    @abc.abstractmethod
    def select(
        self,
        problem: TeamFormationProblem,
        candidates: FrozenSet[Node],
        team: Sequence[Node],
        uncovered_skills: Set[Skill],
    ) -> Node:
        """Return one user from ``candidates`` (which is never empty)."""

    @staticmethod
    def _deterministic(candidates: Iterable[Node]) -> List[Node]:
        """Sort candidates by repr so ties break deterministically."""
        return sorted(candidates, key=repr)


class MinimumDistanceUser(UserSelectionPolicy):
    """Pick the candidate closest to the current team (minimising the cost growth).

    The distance to the team is the largest distance to any current member —
    the same quantity the diameter cost penalises.  For an empty team the
    policy falls back to the candidate with the most skills from the task,
    although Algorithm 2 never calls it with an empty team (seeds are fixed).
    """

    name = "min-distance-user"
    uses_team_distances = True

    def select(
        self,
        problem: TeamFormationProblem,
        candidates: FrozenSet[Node],
        team: Sequence[Node],
        uncovered_skills: Set[Skill],
    ) -> Node:
        ordered = self._deterministic(candidates)
        if not team:
            return max(
                ordered,
                key=lambda user: len(problem.assignment.skills_of(user) & problem.task.skills),
            )
        # One batched engine call scores every candidate against the team
        # (lockstep BFS + array maxima on the CSR backend); the stable argmin
        # over the deterministic ordering matches the legacy per-candidate
        # min() exactly.
        scores = problem.engine.distances_to_team_many(ordered, list(team))
        best = min(range(len(ordered)), key=scores.__getitem__)
        return ordered[best]


class MostCompatibleUser(UserSelectionPolicy):
    """Pick the candidate compatible with the most users holding still-needed skills.

    This is the policy that "aims at maximizing the chances of finding a group
    of compatible users": the chosen member constrains future choices as
    little as possible.

    Scoring a candidate requires its full compatible set, which for the
    balanced-path relations means one (cached) path search per candidate; the
    ``max_candidates`` cap bounds that work on very frequent skills by scoring
    only a random subsample of the candidates.
    """

    name = "most-compatible-user"

    def __init__(self, seed: RandomState = None, max_candidates: int = 30) -> None:
        super().__init__(seed=seed)
        if max_candidates <= 0:
            raise ValueError(f"max_candidates must be positive, got {max_candidates}")
        self.max_candidates = max_candidates

    def select(
        self,
        problem: TeamFormationProblem,
        candidates: FrozenSet[Node],
        team: Sequence[Node],
        uncovered_skills: Set[Skill],
    ) -> Node:
        remaining_holders: Set[Node] = set()
        for skill in uncovered_skills:
            remaining_holders |= problem.candidates_for_skill(skill)
        remaining_holders -= set(team)

        ordered = self._deterministic(candidates)
        if len(ordered) > self.max_candidates:
            ordered = self._rng.sample(ordered, self.max_candidates)
        # One batched engine call resolves every scored candidate's compatible
        # set (lockstep BFS for the SP* family, one shared reverse sweep for
        # the balanced relations).  Scoring uses the returned list directly —
        # not cache re-lookups — so the batch survives an LRU bound smaller
        # than the candidate list (the byte-aware "auto" sizing on huge
        # graphs).  Each set contains the candidate itself, so the pool-empty
        # score len(set) - 1 equals the legacy compatibility_degree.
        compatible_sets = problem.engine.compatible_sets(ordered)

        def compatibility_score(position: int) -> int:
            user = ordered[position]
            compatible_set = compatible_sets[position]
            pool = remaining_holders - {user}
            if not pool:
                return len(compatible_set) - 1
            return sum(1 for other in pool if other in compatible_set)

        # max() over positions keeps the legacy first-maximum tie-break.
        best = max(range(len(ordered)), key=compatibility_score)
        return ordered[best]


class RandomUser(UserSelectionPolicy):
    """Pick a compatible candidate uniformly at random (the paper's RANDOM baseline)."""

    name = "random-user"

    def select(
        self,
        problem: TeamFormationProblem,
        candidates: FrozenSet[Node],
        team: Sequence[Node],
        uncovered_skills: Set[Skill],
    ) -> Node:
        ordered = self._deterministic(candidates)
        return self._rng.choice(ordered)


#: Skill policies by the short codes used in algorithm names.
SKILL_POLICIES = {
    "rarest": RarestSkillFirst,
    "least_compatible": LeastCompatibleSkillFirst,
}

#: User policies by the short codes used in algorithm names.
USER_POLICIES = {
    "min_distance": MinimumDistanceUser,
    "most_compatible": MostCompatibleUser,
    "random": RandomUser,
}
