"""Team formation in signed networks: problems, policies, algorithms, baselines."""

from repro.teams.problem import TeamFormationProblem, TeamFormationResult
from repro.teams.cost import (
    COST_FUNCTIONS,
    CostFunction,
    cardinality_cost,
    diameter_cost,
    get_cost_function,
    sum_distance_cost,
)
from repro.teams.policies import (
    SKILL_POLICIES,
    USER_POLICIES,
    LeastCompatibleSkillFirst,
    MinimumDistanceUser,
    MostCompatibleUser,
    RandomUser,
    RarestSkillFirst,
    SkillSelectionPolicy,
    UserSelectionPolicy,
)
from repro.teams.generic import form_team
from repro.teams.algorithms import (
    ALGORITHM_NAMES,
    lcmc,
    lcmd,
    random_team,
    rfmc,
    rfmd,
    run_algorithm,
)
from repro.teams.exact import exists_compatible_team, solve_exact
from repro.teams.baselines import (
    PROJECTION_NAMES,
    RarestFirstBaseline,
    UnsignedTeamResult,
    project_graph,
    run_unsigned_baseline,
)
from repro.teams.validation import (
    TeamValidationReport,
    fraction_of_compatible_teams,
    team_covers_task,
    team_is_compatible,
    validate_team,
)
from repro.teams.topk import diverse_top_k_teams, top_k_teams

__all__ = [
    "top_k_teams",
    "diverse_top_k_teams",
    "TeamFormationProblem",
    "TeamFormationResult",
    "COST_FUNCTIONS",
    "CostFunction",
    "diameter_cost",
    "sum_distance_cost",
    "cardinality_cost",
    "get_cost_function",
    "SKILL_POLICIES",
    "USER_POLICIES",
    "SkillSelectionPolicy",
    "UserSelectionPolicy",
    "RarestSkillFirst",
    "LeastCompatibleSkillFirst",
    "MinimumDistanceUser",
    "MostCompatibleUser",
    "RandomUser",
    "form_team",
    "ALGORITHM_NAMES",
    "run_algorithm",
    "lcmd",
    "lcmc",
    "rfmd",
    "rfmc",
    "random_team",
    "solve_exact",
    "exists_compatible_team",
    "PROJECTION_NAMES",
    "project_graph",
    "RarestFirstBaseline",
    "UnsignedTeamResult",
    "run_unsigned_baseline",
    "TeamValidationReport",
    "validate_team",
    "team_covers_task",
    "team_is_compatible",
    "fraction_of_compatible_teams",
]
