"""Exhaustive (optimal) solver for small TFSN instances.

TFSN is NP-hard (Theorem 2.2), so an exact solver is only practical on tiny
instances — but it is invaluable for testing: the greedy algorithms must never
report a *compatible covering* team when the exact solver proves none exists,
and their cost can be compared against the optimum on small graphs.

The solver enumerates teams in order of increasing size over the pool of users
that own at least one task skill, pruning teams that are already incompatible,
and returns a minimum-cost team among the smallest feasible and all other
enumerated feasible teams (the optimum over all subsets is attained by an
inclusion-minimal team for the diameter cost, because adding members can only
increase the maximum pairwise distance).
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.signed.graph import Node
from repro.teams.cost import CostFunction, diameter_cost
from repro.teams.problem import TeamFormationProblem, TeamFormationResult


def solve_exact(
    problem: TeamFormationProblem,
    cost_function: CostFunction = diameter_cost,
    max_team_size: Optional[int] = None,
    max_pool_size: int = 40,
) -> TeamFormationResult:
    """Find a minimum-cost compatible covering team by exhaustive enumeration.

    Parameters
    ----------
    problem:
        The TFSN instance.
    cost_function:
        Objective to minimise (default: diameter).  The enumeration covers all
        subsets up to ``max_team_size``, so any monotone cost is handled.
    max_team_size:
        Largest team size to consider; default is the task size (a minimal
        covering team never needs more members than skills).
    max_pool_size:
        Safety cap on the candidate pool (users owning at least one task
        skill); larger pools raise :class:`ValueError` instead of silently
        taking forever.
    """
    task_skills = set(problem.task.skills)
    pool: Set[Node] = set()
    for skill in task_skills:
        pool |= problem.candidates_for_skill(skill)
    if len(pool) > max_pool_size:
        raise ValueError(
            f"candidate pool has {len(pool)} users, above max_pool_size={max_pool_size}; "
            "the exact solver is intended for small instances only"
        )
    limit = max_team_size if max_team_size is not None else len(task_skills)
    limit = min(limit, len(pool))

    best_team: Optional[FrozenSet[Node]] = None
    best_cost = float("inf")
    ordered_pool = sorted(pool, key=repr)
    for size in range(1, limit + 1):
        for combo in itertools.combinations(ordered_pool, size):
            team = frozenset(combo)
            if not problem.assignment.covers(team, task_skills):
                continue
            if not problem.relation.all_compatible(team):
                continue
            cost = cost_function(problem.oracle, team)
            if cost < best_cost:
                best_cost = cost
                best_team = team
    return TeamFormationResult(
        algorithm="EXACT",
        relation_name=problem.relation.name,
        task=problem.task,
        team=best_team,
        cost=best_cost,
        seeds_tried=len(ordered_pool),
        candidates_completed=1 if best_team is not None else 0,
    )


def exists_compatible_team(
    problem: TeamFormationProblem,
    max_pool_size: int = 40,
) -> bool:
    """Decision version (TFSNC): does *any* compatible covering team exist?

    Exhaustive, so only usable on small instances; used by tests to validate
    that the greedy algorithms' failures are genuine.
    """
    result = solve_exact(problem, max_pool_size=max_pool_size)
    return result.solved
