"""The generic greedy team-formation algorithm (Algorithm 2 of the paper).

The algorithm seeds one candidate team per user possessing the first selected
skill, then grows each candidate greedily: repeatedly select an uncovered
skill (skill policy), select a user with that skill who is compatible with
every current member (user policy), and add them.  A candidate that gets stuck
(no compatible user has the needed skill) is abandoned — the algorithm does
not backtrack.  Among the completed candidates, the one with the smallest
communication cost is returned.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set

from repro.signed.graph import Node
from repro.skills.assignment import Skill
from repro.teams.cost import CostFunction, diameter_cost
from repro.teams.policies import SkillSelectionPolicy, UserSelectionPolicy
from repro.teams.problem import TeamFormationProblem, TeamFormationResult
from repro.utils.rng import RandomState, ensure_rng


def form_team(
    problem: TeamFormationProblem,
    skill_policy: SkillSelectionPolicy,
    user_policy: UserSelectionPolicy,
    cost_function: CostFunction = diameter_cost,
    max_seeds: Optional[int] = None,
    algorithm_name: Optional[str] = None,
    seed: RandomState = None,
) -> TeamFormationResult:
    """Run Algorithm 2 on ``problem`` with the given policies.

    Parameters
    ----------
    problem:
        The TFSN instance to solve.
    skill_policy / user_policy:
        The two placeholder policies of Algorithm 2.
    cost_function:
        Cost used to pick the best completed candidate (default: diameter).
    max_seeds:
        Optional cap on the number of seed users tried for the first skill
        (useful on graphs where the first skill is very frequent); ``None``
        tries them all, like the paper's pseudo-code.
    algorithm_name:
        Label recorded in the result (defaults to the policy names).
    seed:
        Used only to subsample seeds when ``max_seeds`` is set.

    Returns
    -------
    TeamFormationResult
        With ``team=None`` and ``cost=inf`` when no candidate completed.
    """
    name = algorithm_name or f"{skill_policy.name}+{user_policy.name}"
    task_skills = set(problem.task.skills)

    first_skill = skill_policy.select(problem, set(task_skills), team=())
    seeds = sorted(problem.candidates_for_skill(first_skill), key=repr)
    if max_seeds is not None and len(seeds) > max_seeds:
        rng = ensure_rng(seed)
        seeds = rng.sample(seeds, max_seeds)

    # Every seed becomes the first team member, so its per-source computation
    # (one signed BFS under the SP* relations) is needed by the very first
    # candidate filter of its growth loop; warming them through the engine
    # runs one lockstep multi-source batch instead of one BFS per seed.
    # Distance maps are only prefetched for policies that score by distance.
    problem.engine.warm(seeds, distances=user_policy.uses_team_distances)

    completed: List[FrozenSet[Node]] = []
    seeds_tried = 0
    for seed_user in seeds:
        seeds_tried += 1
        candidate = _grow_candidate(problem, seed_user, task_skills, skill_policy, user_policy)
        if candidate is not None:
            completed.append(candidate)

    if not completed:
        return TeamFormationResult(
            algorithm=name,
            relation_name=problem.relation.name,
            task=problem.task,
            team=None,
            cost=float("inf"),
            seeds_tried=seeds_tried,
            candidates_completed=0,
        )

    best_team = min(
        completed, key=lambda team: (cost_function(problem.oracle, team), len(team))
    )
    return TeamFormationResult(
        algorithm=name,
        relation_name=problem.relation.name,
        task=problem.task,
        team=best_team,
        cost=cost_function(problem.oracle, best_team),
        seeds_tried=seeds_tried,
        candidates_completed=len(completed),
    )


def _grow_candidate(
    problem: TeamFormationProblem,
    seed_user: Node,
    task_skills: Set[Skill],
    skill_policy: SkillSelectionPolicy,
    user_policy: UserSelectionPolicy,
) -> Optional[FrozenSet[Node]]:
    """Grow one candidate team from ``seed_user``; return it or ``None`` if stuck."""
    team: List[Node] = [seed_user]
    covered = problem.assignment.skills_of(seed_user) & task_skills
    while covered != task_skills:
        uncovered = task_skills - covered
        skill = skill_policy.select(problem, set(uncovered), team)
        candidates = problem.compatible_candidates(skill, team)
        if not candidates:
            return None
        user = user_policy.select(problem, candidates, team, set(uncovered))
        team.append(user)
        covered |= problem.assignment.skills_of(user) & task_skills
    return frozenset(team)
