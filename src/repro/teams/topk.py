"""Top-k and diverse team formation.

The related work the paper builds on (Kargar & An, CIKM 2011) asks for the
*top-k* teams of experts rather than a single one — useful when a project
manager wants alternatives to choose from.  This module extends Algorithm 2
accordingly:

* :func:`top_k_teams` — the k best distinct completed candidate teams of
  Algorithm 2, ordered by communication cost;
* :func:`diverse_top_k_teams` — a greedy diversification pass that additionally
  bounds the pairwise member overlap between returned teams, so the
  alternatives are genuinely different people.

The seed loop warms its seed users through the batched execution engine
(:meth:`repro.compatibility.engine.CompatibilityEngine.warm`) exactly like
:func:`repro.teams.generic.form_team`, so the per-source kernels run as one
lockstep multi-source batch (and through the distance-label index when
``ExecutionPolicy(distance_index=...)`` enables it) instead of one BFS per
seed.  Ranking is stable on ``(cost, len(team))`` with costs computed once
per distinct team, so ``top_k_teams(..., k=1)`` returns exactly the team
:func:`~repro.teams.generic.form_team` would pick.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.signed.graph import Node
from repro.skills.assignment import Skill
from repro.teams.cost import CostFunction, diameter_cost
from repro.teams.policies import SkillSelectionPolicy, UserSelectionPolicy
from repro.teams.problem import TeamFormationProblem
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive, require_probability


def _completed_candidates(
    problem: TeamFormationProblem,
    skill_policy: SkillSelectionPolicy,
    user_policy: UserSelectionPolicy,
    max_seeds: Optional[int],
    seed: RandomState,
) -> List[FrozenSet[Node]]:
    """Run the seed loop of Algorithm 2 and return every completed candidate team."""
    from repro.teams.generic import _grow_candidate  # shared growth procedure

    task_skills = set(problem.task.skills)
    first_skill = skill_policy.select(problem, set(task_skills), team=())
    seeds = sorted(problem.candidates_for_skill(first_skill), key=repr)
    if max_seeds is not None and len(seeds) > max_seeds:
        rng = ensure_rng(seed)
        seeds = rng.sample(seeds, max_seeds)
    # Same batched prefetch as form_team: one lockstep multi-source sweep for
    # the seeds' per-source computations, distance maps only when the user
    # policy actually scores by distance.
    problem.engine.warm(seeds, distances=user_policy.uses_team_distances)
    candidates: List[FrozenSet[Node]] = []
    for seed_user in seeds:
        candidate = _grow_candidate(problem, seed_user, task_skills, skill_policy, user_policy)
        if candidate is not None:
            candidates.append(candidate)
    return candidates


def top_k_teams(
    problem: TeamFormationProblem,
    skill_policy: SkillSelectionPolicy,
    user_policy: UserSelectionPolicy,
    k: int = 3,
    cost_function: CostFunction = diameter_cost,
    max_seeds: Optional[int] = None,
    seed: RandomState = None,
) -> List[Tuple[FrozenSet[Node], float]]:
    """Return up to ``k`` distinct candidate teams, cheapest first.

    Every returned team covers the task and is pairwise compatible (they are
    completed candidates of Algorithm 2); ties are broken by team size and
    then by seed order (the sort is stable over the deterministic seed loop),
    so ``k=1`` reproduces :func:`repro.teams.generic.form_team` exactly.
    """
    require_positive(k, "k")
    candidates = _completed_candidates(problem, skill_policy, user_policy, max_seeds, seed)
    # Order-preserving dedupe: keep each team at its first-seed position so
    # the stable sort below breaks (cost, size) ties exactly like form_team's
    # min() over the seed loop.
    unique = list(dict.fromkeys(candidates))
    scored = [(team, cost_function(problem.oracle, team)) for team in unique]
    scored.sort(key=lambda entry: (entry[1], len(entry[0])))
    return scored[:k]


def diverse_top_k_teams(
    problem: TeamFormationProblem,
    skill_policy: SkillSelectionPolicy,
    user_policy: UserSelectionPolicy,
    k: int = 3,
    max_overlap: float = 0.5,
    cost_function: CostFunction = diameter_cost,
    max_seeds: Optional[int] = None,
    seed: RandomState = None,
) -> List[Tuple[FrozenSet[Node], float]]:
    """Like :func:`top_k_teams` but enforcing bounded member overlap.

    Teams are considered cheapest-first; a team is kept only if its Jaccard
    overlap with every already-kept team is at most ``max_overlap``.  Fewer
    than ``k`` teams may be returned when the candidate pool is small.
    """
    require_positive(k, "k")
    require_probability(max_overlap, "max_overlap")
    ranked = top_k_teams(
        problem,
        skill_policy,
        user_policy,
        k=10 * k,
        cost_function=cost_function,
        max_seeds=max_seeds,
        seed=seed,
    )
    kept: List[Tuple[FrozenSet[Node], float]] = []
    for team, cost in ranked:
        if all(_jaccard(team, existing) <= max_overlap for existing, _ in kept):
            kept.append((team, cost))
        if len(kept) == k:
            break
    return kept


def _jaccard(first: FrozenSet[Node], second: FrozenSet[Node]) -> float:
    union = first | second
    if not union:
        return 0.0
    return len(first & second) / len(union)
