"""Problem and result objects for Team Formation in Signed Networks (TFSN).

A :class:`TeamFormationProblem` bundles everything Definition 2.1 of the paper
needs — the signed graph, the skill assignment, the task, the compatibility
relation and the distance/cost machinery — so algorithms receive a single
coherent object.  A :class:`TeamFormationResult` records the outcome in a form
the experiment harness can aggregate (success flag, team, cost, seeds tried).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable, Optional

from repro.compatibility.base import CompatibilityRelation
from repro.compatibility.distance import DistanceOracle
from repro.compatibility.engine import CompatibilityEngine
from repro.compatibility.skill_compat import SkillCompatibilityIndex
from repro.exceptions import InfeasibleTaskError
from repro.signed.graph import Node, SignedGraph
from repro.skills.assignment import SkillAssignment
from repro.skills.task import Task


class TeamFormationProblem:
    """One instance of the TFSN problem.

    Parameters
    ----------
    graph:
        The signed network of users.
    assignment:
        The user ↔ skill assignment.
    relation:
        The compatibility relation ``Comp`` the team must satisfy.
    task:
        The set of skills to cover.
    oracle:
        Optional pre-built :class:`DistanceOracle`; built from ``relation``
        when omitted.  Sharing an oracle across problems on the same graph
        reuses its BFS caches.
    skill_index:
        Optional pre-built :class:`SkillCompatibilityIndex` used by the
        "least compatible skill" policy; built lazily when needed.
    engine:
        Optional pre-built :class:`CompatibilityEngine`; built from
        ``relation`` and the oracle when omitted.  All one-to-many queries of
        the team-formation algorithms (candidate filtering, distance-to-team
        scoring, seed warming) go through it, so sharing an engine across
        problems on the same graph shares the batched caches too.
    """

    def __init__(
        self,
        graph: SignedGraph,
        assignment: SkillAssignment,
        relation: CompatibilityRelation,
        task: Task,
        oracle: Optional[DistanceOracle] = None,
        skill_index: Optional[SkillCompatibilityIndex] = None,
        engine: Optional[CompatibilityEngine] = None,
    ) -> None:
        if not isinstance(graph, SignedGraph):
            # A bare CSRSignedGraph adapts to its canonical lazy facade — the
            # same object the relation got from as_signed_graph, so the
            # identity check below still holds for CSR-first construction.
            from repro.signed.lazy import as_signed_graph

            graph = as_signed_graph(graph)
        if relation.graph is not graph:
            raise ValueError("the relation must be defined over the problem's graph")
        missing = {
            skill for skill in task.skills if assignment.skill_frequency(skill) == 0
        }
        if missing:
            raise InfeasibleTaskError(missing)
        self.graph = graph
        self.assignment = assignment
        self.relation = relation
        self.task = task
        if engine is not None:
            if engine.relation is not relation:
                raise ValueError("the engine must be built on the problem's relation")
            if oracle is not None and engine.oracle is not oracle:
                raise ValueError(
                    "engine and oracle disagree; pass one or build the engine "
                    "on the given oracle"
                )
            self.engine = engine
            self.oracle = engine.oracle
        else:
            self.oracle = oracle if oracle is not None else DistanceOracle(relation)
            self.engine = CompatibilityEngine(relation, oracle=self.oracle)
        self._skill_index = skill_index

    @property
    def skill_index(self) -> SkillCompatibilityIndex:
        """The skill compatibility index, built lazily with an existence cap."""
        if self._skill_index is None:
            self._skill_index = SkillCompatibilityIndex(
                self.relation, self.assignment, count_cap=None
            )
        return self._skill_index

    def refresh(self) -> None:
        """Re-validate the problem against a mutated graph and resync caches.

        The compatibility caches are generation-keyed and expire by
        themselves, so queries after a mutation are always correct without
        this call; ``refresh()`` (1) re-checks that every task skill still
        has a holder *present in the graph* (raising
        :class:`~repro.exceptions.InfeasibleTaskError` otherwise — node
        removals can starve a skill even though the assignment is unchanged)
        and (2) eagerly performs the delta-applied CSR snapshot rebuild and
        the targeted cache invalidation via
        :meth:`~repro.compatibility.engine.CompatibilityEngine.refresh`, so
        the next query doesn't pay them.  Streaming workloads call it once
        per update batch.
        """
        missing = {
            skill for skill in self.task.skills if not self.candidates_for_skill(skill)
        }
        if missing:
            raise InfeasibleTaskError(missing)
        self.engine.refresh()

    def candidates_for_skill(self, skill: Hashable) -> FrozenSet[Node]:
        """Users of the graph that possess ``skill``."""
        return frozenset(
            user for user in self.assignment.users_with(skill) if user in self.graph
        )

    def compatible_candidates(
        self, skill: Hashable, team: Iterable[Node]
    ) -> FrozenSet[Node]:
        """Users with ``skill`` that are compatible with every current team member.

        Answered by the engine's one-to-many filter
        (:meth:`~repro.compatibility.engine.CompatibilityEngine.compatible_from_many`),
        which batches the team's per-source computations and applies the pair
        rule vectorised on the CSR backend; the result is identical to the
        per-pair ``are_compatible`` loop it replaces.
        """
        return self.engine.compatible_from_many(self.candidates_for_skill(skill), list(team))

    def __repr__(self) -> str:
        return (
            f"TeamFormationProblem(relation={self.relation.name}, "
            f"task_size={len(self.task)}, users={self.graph.number_of_nodes()})"
        )


@dataclass(frozen=True)
class TeamFormationResult:
    """Outcome of one team-formation run.

    ``team`` is ``None`` when no compatible covering team was found; ``cost``
    is ``inf`` in that case.  ``seeds_tried`` and ``candidates_completed``
    describe how much of the seed loop of Algorithm 2 succeeded, which the
    experiments use for diagnostics.
    """

    algorithm: str
    relation_name: str
    task: Task
    team: Optional[FrozenSet[Node]]
    cost: float
    seeds_tried: int = 0
    candidates_completed: int = 0

    @property
    def solved(self) -> bool:
        """True iff a compatible covering team was found."""
        return self.team is not None

    @property
    def team_size(self) -> int:
        """Number of members in the team (0 when unsolved)."""
        return len(self.team) if self.team is not None else 0

    def __repr__(self) -> str:
        status = f"team_size={self.team_size}, cost={self.cost}" if self.solved else "unsolved"
        return (
            f"TeamFormationResult(algorithm={self.algorithm!r}, "
            f"relation={self.relation_name!r}, {status})"
        )
