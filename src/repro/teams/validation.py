"""Validation of candidate teams against the TFSN requirements.

Used by the algorithms' tests, by the unsigned-baseline comparison (Table 3 —
"what fraction of the baseline's teams are actually compatible?") and by the
examples to explain *why* a team is or is not acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.compatibility.base import CompatibilityRelation
from repro.compatibility.distance import DistanceOracle
from repro.signed.graph import Node
from repro.skills.assignment import Skill, SkillAssignment
from repro.skills.task import Task


@dataclass(frozen=True)
class TeamValidationReport:
    """Detailed verdict on a candidate team."""

    team: FrozenSet[Node]
    covers_task: bool
    missing_skills: FrozenSet[Skill]
    is_compatible: bool
    incompatible_pairs: Tuple[Tuple[Node, Node], ...]
    cost: Optional[float]

    @property
    def is_valid(self) -> bool:
        """True iff the team covers the task and is pairwise compatible."""
        return self.covers_task and self.is_compatible


def team_covers_task(team: Iterable[Node], task: Task, assignment: SkillAssignment) -> bool:
    """True iff the union of the team's skills contains every task skill."""
    return assignment.covers(team, task.skills)


def team_is_compatible(team: Iterable[Node], relation: CompatibilityRelation) -> bool:
    """True iff every pair of team members is compatible under ``relation``."""
    return relation.all_compatible(team)


def validate_team(
    team: Iterable[Node],
    task: Task,
    assignment: SkillAssignment,
    relation: CompatibilityRelation,
    oracle: Optional[DistanceOracle] = None,
) -> TeamValidationReport:
    """Produce a full :class:`TeamValidationReport` for ``team``."""
    team_set = frozenset(team)
    missing = frozenset(assignment.missing_skills(team_set, task.skills))
    incompatible = tuple(relation.incompatible_pairs(team_set))
    cost: Optional[float] = None
    if oracle is not None and team_set:
        cost = oracle.max_pairwise_distance(team_set)
    return TeamValidationReport(
        team=team_set,
        covers_task=not missing,
        missing_skills=missing,
        is_compatible=not incompatible,
        incompatible_pairs=incompatible,
        cost=cost,
    )


def fraction_of_compatible_teams(
    teams: Iterable[Optional[Iterable[Node]]],
    relation: CompatibilityRelation,
) -> float:
    """Fraction of the given teams whose members are pairwise compatible.

    ``None`` entries (tasks the producing algorithm failed to solve) count as
    incompatible, matching how the paper's Table 3 treats them.  Returns 0.0
    for an empty input.
    """
    team_list = list(teams)
    if not team_list:
        return 0.0
    compatible = sum(
        1
        for team in team_list
        if team is not None and team_is_compatible(team, relation)
    )
    return compatible / len(team_list)
