"""Descriptive statistics of skill assignments (the "#skills" column of Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.skills.assignment import SkillAssignment


@dataclass(frozen=True)
class SkillStatistics:
    """Summary of a skill assignment."""

    num_users: int
    num_skills: int
    total_assignments: int
    average_skills_per_user: float
    max_skill_frequency: int
    min_skill_frequency: int
    users_without_skills: int

    def as_dict(self) -> Dict[str, object]:
        """Return the statistics as a plain dictionary (for table rendering)."""
        return {
            "#users": self.num_users,
            "#skills": self.num_skills,
            "#assignments": self.total_assignments,
            "avg skills/user": round(self.average_skills_per_user, 2),
            "max skill freq": self.max_skill_frequency,
            "min skill freq": self.min_skill_frequency,
            "users w/o skills": self.users_without_skills,
        }


def skill_statistics(assignment: SkillAssignment) -> SkillStatistics:
    """Compute :class:`SkillStatistics` for ``assignment``."""
    users = assignment.users()
    skills = assignment.skills()
    per_user_counts: List[int] = [len(assignment.skills_of(user)) for user in users]
    frequencies: List[int] = [assignment.skill_frequency(skill) for skill in skills]
    total = sum(per_user_counts)
    return SkillStatistics(
        num_users=len(users),
        num_skills=len(skills),
        total_assignments=total,
        average_skills_per_user=(total / len(users)) if users else 0.0,
        max_skill_frequency=max(frequencies) if frequencies else 0,
        min_skill_frequency=min(frequencies) if frequencies else 0,
        users_without_skills=sum(1 for count in per_user_counts if count == 0),
    )


def skill_frequency_table(assignment: SkillAssignment) -> Dict[object, int]:
    """Map each skill to the number of users possessing it, sorted by frequency."""
    frequencies = {skill: assignment.skill_frequency(skill) for skill in assignment.skills()}
    return dict(sorted(frequencies.items(), key=lambda item: (-item[1], str(item[0]))))
