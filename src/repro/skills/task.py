"""Tasks: the set of skills a team must cover."""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, List, Optional

from repro.skills.assignment import Skill, SkillAssignment
from repro.utils.rng import RandomState, ensure_rng


class Task:
    """An immutable set of required skills ``T ⊆ S``.

    Example
    -------
    >>> task = Task(["python", "sql"])
    >>> len(task)
    2
    >>> "sql" in task
    True
    """

    def __init__(self, skills: Iterable[Skill], name: Optional[str] = None) -> None:
        self._skills: FrozenSet[Skill] = frozenset(skills)
        if not self._skills:
            raise ValueError("a task must require at least one skill")
        self.name = name

    @property
    def skills(self) -> FrozenSet[Skill]:
        """The required skills."""
        return self._skills

    def __len__(self) -> int:
        return len(self._skills)

    def __iter__(self) -> Iterator[Skill]:
        return iter(self._skills)

    def __contains__(self, skill: Skill) -> bool:
        return skill in self._skills

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return self._skills == other._skills

    def __hash__(self) -> int:
        return hash(self._skills)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Task(size={len(self._skills)}{label})"

    def is_coverable(self, assignment: SkillAssignment) -> bool:
        """True iff every required skill is possessed by at least one user."""
        return all(assignment.skill_frequency(skill) > 0 for skill in self._skills)

    def uncovered_by(self, assignment: SkillAssignment, users: Iterable[Hashable]) -> FrozenSet[Skill]:
        """The required skills not covered by ``users``."""
        return frozenset(assignment.missing_skills(users, self._skills))

    @classmethod
    def random(
        cls,
        assignment: SkillAssignment,
        size: int,
        seed: RandomState = None,
        name: Optional[str] = None,
        require_coverable: bool = True,
    ) -> "Task":
        """Sample a random task of ``size`` distinct skills from the universe.

        With ``require_coverable`` (default) only skills owned by at least one
        user are eligible — this matches the paper's workload, where tasks are
        drawn from the skills present in the dataset.
        """
        if size <= 0:
            raise ValueError(f"task size must be positive, got {size}")
        rng = ensure_rng(seed)
        universe: List[Skill] = [
            skill
            for skill in assignment.skills()
            if not require_coverable or assignment.skill_frequency(skill) > 0
        ]
        if size > len(universe):
            raise ValueError(
                f"cannot sample a task of size {size} from a universe of {len(universe)} skills"
            )
        return cls(rng.sample(universe, size), name=name)


def random_tasks(
    assignment: SkillAssignment,
    size: int,
    count: int,
    seed: RandomState = None,
) -> List[Task]:
    """Sample ``count`` independent random tasks of the given ``size``.

    This reproduces the paper's workload generator: "for a given task of size
    k, we generated 50 tasks by randomly selecting k skills".
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = ensure_rng(seed)
    return [
        Task.random(assignment, size, seed=rng, name=f"task-{size}-{index}")
        for index in range(count)
    ]
