"""Synthetic skill generators.

The paper's Wikipedia dataset has no skill information, so the authors
"generated 500 distinct skills with frequencies following a Zipf distribution
as in real data" and assigned each skill to users uniformly at random.  The
same generator is used here for every synthetic dataset; the Zipf exponent and
the per-user skill count distribution are configurable.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.skills.assignment import Skill, SkillAssignment, User
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive

try:  # optional accelerator — the generators fall back to pure python
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the legacy path tests
    _np = None


def zipf_skill_frequencies(
    num_skills: int,
    total_assignments: int,
    exponent: float = 1.0,
) -> List[int]:
    """Target number of users per skill under a Zipf law.

    Skill ranked ``r`` (1-based) receives a share proportional to
    ``1 / r**exponent`` of ``total_assignments``; every skill gets at least
    one assignment so the universe size is preserved.
    """
    require_positive(num_skills, "num_skills")
    require_positive(total_assignments, "total_assignments")
    require_positive(exponent, "exponent")
    weights = [1.0 / (rank**exponent) for rank in range(1, num_skills + 1)]
    normaliser = sum(weights)
    frequencies = [
        max(1, int(round(total_assignments * weight / normaliser))) for weight in weights
    ]
    return frequencies


def assign_skills_zipf(
    users: Sequence[User],
    num_skills: int,
    skills_per_user: float = 3.0,
    exponent: float = 1.0,
    skill_prefix: str = "skill",
    seed: RandomState = None,
) -> SkillAssignment:
    """Assign Zipf-distributed skills to ``users`` uniformly at random.

    Parameters
    ----------
    users:
        The user population (typically the graph's node list).
    num_skills:
        Size of the skill universe.
    skills_per_user:
        Average number of skills per user; the total number of (user, skill)
        assignments is ``len(users) * skills_per_user``.
    exponent:
        Zipf exponent — larger values concentrate assignments on the most
        popular skills.
    skill_prefix:
        Skills are named ``f"{skill_prefix}-{rank}"``.
    seed:
        Seed / generator for reproducibility.

    Every user receives at least one skill, and duplicate (user, skill)
    assignments are merged, so the realised average can be slightly below the
    requested one on small universes.

    .. note:: **Seed compatibility.** When numpy is available the per-skill
       holders are drawn with a vectorised ``numpy.random.Generator`` sampler
       (the pure-python ``rng.sample`` loop dominated million-node cold
       starts).  The realised assignment for a given ``seed`` therefore
       differs from pre-vectorised releases and from the numpy-less fallback
       — the *distribution* is identical, and a given ``(seed, numpy)``
       combination remains fully deterministic.  Passing a
       :class:`random.Random` consumes 64 bits from it to derive the numpy
       seed, so interleaved callers stay reproducible too.
    """
    if not users:
        raise ValueError("users must be non-empty")
    require_positive(num_skills, "num_skills")
    require_positive(skills_per_user, "skills_per_user")

    total_assignments = max(len(users), int(round(len(users) * skills_per_user)))
    frequencies = zipf_skill_frequencies(num_skills, total_assignments, exponent=exponent)
    skill_names = [f"{skill_prefix}-{rank}" for rank in range(1, num_skills + 1)]
    user_list = list(users)

    if _np is not None:
        return _assign_zipf_vectorised(user_list, frequencies, skill_names, seed)

    rng = ensure_rng(seed)
    assignment = SkillAssignment()
    for user in user_list:
        assignment.add_user(user)
    for skill, frequency in zip(skill_names, frequencies):
        holders = (
            rng.sample(user_list, frequency)
            if frequency <= len(user_list)
            else list(user_list)
        )
        for user in holders:
            assignment.add_skill_to_user(user, skill)

    # Guarantee that no user is skill-less (the team-formation workload draws
    # users by skill, so a skill-less user would simply never be selected, but
    # downstream statistics are cleaner without them).
    for user in user_list:
        if not assignment.skills_of(user):
            rank = rng.randrange(num_skills)
            assignment.add_skill_to_user(user, skill_names[rank])
    return assignment


def _assign_zipf_vectorised(
    user_list: List[User],
    frequencies: List[int],
    skill_names: List[str],
    seed: RandomState,
) -> SkillAssignment:
    """Numpy fast path for :func:`assign_skills_zipf`.

    Same semantics as the legacy loop — exact per-skill frequencies (clamped
    to the population), uniform holders without replacement, no skill-less
    users — but each skill's holder set is one ``Generator.choice`` call and
    the bidirectional maps are built from grouped index arrays instead of
    per-pair dict insertions.
    """
    np = _np
    if isinstance(seed, random.Random):
        rng = np.random.default_rng(seed.getrandbits(64))
    else:
        ensure_rng(seed)  # same seed-type validation as the legacy path
        rng = np.random.default_rng(seed)

    num_users = len(user_list)
    holder_chunks: List["_np.ndarray"] = []
    for frequency in frequencies:
        if frequency >= num_users:
            holder_chunks.append(np.arange(num_users, dtype=np.int64))
        else:
            holder_chunks.append(
                rng.choice(num_users, size=frequency, replace=False).astype(np.int64)
            )

    # Each chunk holds distinct users, so membership counting is a plain
    # gather-add — no np.add.at needed.
    counts = np.zeros(num_users, dtype=np.int64)
    for chunk in holder_chunks:
        counts[chunk] += 1
    skillless = np.flatnonzero(counts == 0)
    extra_ranks = rng.integers(0, len(skill_names), size=skillless.size)

    user_idx = np.concatenate(holder_chunks + [skillless])
    skill_idx = np.concatenate(
        [
            np.full(chunk.shape[0], rank, dtype=np.int64)
            for rank, chunk in enumerate(holder_chunks)
        ]
        + [extra_ranks.astype(np.int64)]
    )

    order = np.argsort(user_idx, kind="stable")
    sorted_users = user_idx[order]
    # The skill-less fixup guarantees every user index appears, so the group
    # boundaries enumerate exactly the full population.
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(sorted_users)) + 1, [sorted_users.shape[0]]]
    ).tolist()
    group_owner = sorted_users[np.asarray(starts[:-1], dtype=np.int64)].tolist()
    sorted_names = list(map(skill_names.__getitem__, skill_idx[order].tolist()))

    user_skills: Dict[User, set] = {
        user_list[owner]: set(sorted_names[start:end])
        for owner, start, end in zip(group_owner, starts, starts[1:])
    }

    skill_users: Dict[Skill, set] = {
        skill_names[rank]: set(map(user_list.__getitem__, chunk.tolist()))
        for rank, chunk in enumerate(holder_chunks)
    }
    for index, rank in zip(skillless.tolist(), extra_ranks.tolist()):
        skill_users[skill_names[rank]].add(user_list[index])

    return SkillAssignment._from_maps(user_skills, skill_users)


def assign_skills_uniform(
    users: Sequence[User],
    num_skills: int,
    skills_per_user: int = 3,
    skill_prefix: str = "skill",
    seed: RandomState = None,
) -> SkillAssignment:
    """Assign exactly ``skills_per_user`` uniformly random distinct skills to every user."""
    if not users:
        raise ValueError("users must be non-empty")
    require_positive(num_skills, "num_skills")
    require_positive(skills_per_user, "skills_per_user")
    rng = ensure_rng(seed)
    skill_names = [f"{skill_prefix}-{rank}" for rank in range(1, num_skills + 1)]
    per_user = min(skills_per_user, num_skills)
    assignment = SkillAssignment()
    for user in users:
        assignment.add_user(user, rng.sample(skill_names, per_user))
    return assignment


def assign_skills_from_communities(
    communities: Dict[User, int],
    skills_per_community: int = 20,
    background_skills: int = 10,
    skills_per_user: int = 3,
    seed: RandomState = None,
) -> SkillAssignment:
    """Skill model correlated with community structure.

    Each community gets its own pool of skills plus a shared "background"
    pool; users draw most of their skills from their community pool.  This is
    used by the domain-specific examples to model organisations where
    expertise clusters with team structure.
    """
    if not communities:
        raise ValueError("communities must be non-empty")
    require_positive(skills_per_community, "skills_per_community")
    require_positive(skills_per_user, "skills_per_user")
    rng = ensure_rng(seed)
    community_ids = sorted(set(communities.values()))
    pools = {
        community: [f"c{community}-skill-{i}" for i in range(skills_per_community)]
        for community in community_ids
    }
    shared = [f"shared-skill-{i}" for i in range(background_skills)]

    assignment = SkillAssignment()
    for user, community in communities.items():
        pool = pools[community] + shared
        count = min(skills_per_user, len(pool))
        assignment.add_user(user, rng.sample(pool, count))
    return assignment
