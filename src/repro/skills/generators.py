"""Synthetic skill generators.

The paper's Wikipedia dataset has no skill information, so the authors
"generated 500 distinct skills with frequencies following a Zipf distribution
as in real data" and assigned each skill to users uniformly at random.  The
same generator is used here for every synthetic dataset; the Zipf exponent and
the per-user skill count distribution are configurable.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.skills.assignment import Skill, SkillAssignment, User
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive


def zipf_skill_frequencies(
    num_skills: int,
    total_assignments: int,
    exponent: float = 1.0,
) -> List[int]:
    """Target number of users per skill under a Zipf law.

    Skill ranked ``r`` (1-based) receives a share proportional to
    ``1 / r**exponent`` of ``total_assignments``; every skill gets at least
    one assignment so the universe size is preserved.
    """
    require_positive(num_skills, "num_skills")
    require_positive(total_assignments, "total_assignments")
    require_positive(exponent, "exponent")
    weights = [1.0 / (rank**exponent) for rank in range(1, num_skills + 1)]
    normaliser = sum(weights)
    frequencies = [
        max(1, int(round(total_assignments * weight / normaliser))) for weight in weights
    ]
    return frequencies


def assign_skills_zipf(
    users: Sequence[User],
    num_skills: int,
    skills_per_user: float = 3.0,
    exponent: float = 1.0,
    skill_prefix: str = "skill",
    seed: RandomState = None,
) -> SkillAssignment:
    """Assign Zipf-distributed skills to ``users`` uniformly at random.

    Parameters
    ----------
    users:
        The user population (typically the graph's node list).
    num_skills:
        Size of the skill universe.
    skills_per_user:
        Average number of skills per user; the total number of (user, skill)
        assignments is ``len(users) * skills_per_user``.
    exponent:
        Zipf exponent — larger values concentrate assignments on the most
        popular skills.
    skill_prefix:
        Skills are named ``f"{skill_prefix}-{rank}"``.
    seed:
        Seed / generator for reproducibility.

    Every user receives at least one skill, and duplicate (user, skill)
    assignments are merged, so the realised average can be slightly below the
    requested one on small universes.
    """
    if not users:
        raise ValueError("users must be non-empty")
    require_positive(num_skills, "num_skills")
    require_positive(skills_per_user, "skills_per_user")
    rng = ensure_rng(seed)

    total_assignments = max(len(users), int(round(len(users) * skills_per_user)))
    frequencies = zipf_skill_frequencies(num_skills, total_assignments, exponent=exponent)
    skill_names = [f"{skill_prefix}-{rank}" for rank in range(1, num_skills + 1)]

    assignment = SkillAssignment()
    for user in users:
        assignment.add_user(user)

    user_list = list(users)
    for skill, frequency in zip(skill_names, frequencies):
        holders = (
            rng.sample(user_list, frequency)
            if frequency <= len(user_list)
            else list(user_list)
        )
        for user in holders:
            assignment.add_skill_to_user(user, skill)

    # Guarantee that no user is skill-less (the team-formation workload draws
    # users by skill, so a skill-less user would simply never be selected, but
    # downstream statistics are cleaner without them).
    for user in user_list:
        if not assignment.skills_of(user):
            rank = rng.randrange(num_skills)
            assignment.add_skill_to_user(user, skill_names[rank])
    return assignment


def assign_skills_uniform(
    users: Sequence[User],
    num_skills: int,
    skills_per_user: int = 3,
    skill_prefix: str = "skill",
    seed: RandomState = None,
) -> SkillAssignment:
    """Assign exactly ``skills_per_user`` uniformly random distinct skills to every user."""
    if not users:
        raise ValueError("users must be non-empty")
    require_positive(num_skills, "num_skills")
    require_positive(skills_per_user, "skills_per_user")
    rng = ensure_rng(seed)
    skill_names = [f"{skill_prefix}-{rank}" for rank in range(1, num_skills + 1)]
    per_user = min(skills_per_user, num_skills)
    assignment = SkillAssignment()
    for user in users:
        assignment.add_user(user, rng.sample(skill_names, per_user))
    return assignment


def assign_skills_from_communities(
    communities: Dict[User, int],
    skills_per_community: int = 20,
    background_skills: int = 10,
    skills_per_user: int = 3,
    seed: RandomState = None,
) -> SkillAssignment:
    """Skill model correlated with community structure.

    Each community gets its own pool of skills plus a shared "background"
    pool; users draw most of their skills from their community pool.  This is
    used by the domain-specific examples to model organisations where
    expertise clusters with team structure.
    """
    if not communities:
        raise ValueError("communities must be non-empty")
    require_positive(skills_per_community, "skills_per_community")
    require_positive(skills_per_user, "skills_per_user")
    rng = ensure_rng(seed)
    community_ids = sorted(set(communities.values()))
    pools = {
        community: [f"c{community}-skill-{i}" for i in range(skills_per_community)]
        for community in community_ids
    }
    shared = [f"shared-skill-{i}" for i in range(background_skills)]

    assignment = SkillAssignment()
    for user, community in communities.items():
        pool = pools[community] + shared
        count = min(skills_per_user, len(pool))
        assignment.add_user(user, rng.sample(pool, count))
    return assignment
