"""The user ↔ skill assignment (``skill(u)`` in the paper).

:class:`SkillAssignment` is a bidirectional map between users and skills.  It
answers both directions in O(1) per lookup — "which skills does user *u*
have?" (needed when growing a team) and "which users have skill *s*?" (needed
when selecting candidates for an uncovered skill).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.exceptions import UnknownSkillError

User = Hashable
Skill = Hashable


class SkillAssignment:
    """Bidirectional user ↔ skill map.

    Example
    -------
    >>> assignment = SkillAssignment({"alice": {"python", "sql"}, "bob": {"sql"}})
    >>> sorted(assignment.skills_of("alice"))
    ['python', 'sql']
    >>> sorted(assignment.users_with("sql"))
    ['alice', 'bob']
    >>> assignment.skill_frequency("sql")
    2
    """

    def __init__(self, assignment: Optional[Mapping[User, Iterable[Skill]]] = None) -> None:
        self._user_skills: Dict[User, Set[Skill]] = {}
        self._skill_users: Dict[Skill, Set[User]] = {}
        if assignment:
            for user, skills in assignment.items():
                self.add_user(user, skills)

    # ------------------------------------------------------------------ build

    @classmethod
    def _from_maps(
        cls,
        user_skills: Dict[User, Set[Skill]],
        skill_users: Dict[Skill, Set[User]],
    ) -> "SkillAssignment":
        """Adopt pre-built forward/inverse maps without per-pair insertion.

        Internal constructor for bulk generators: the two maps must be exact
        inverses of each other and ``skill_users`` must contain no empty sets
        (the invariant :meth:`remove_skill_from_user` maintains).
        """
        assignment = cls()
        assignment._user_skills = user_skills
        assignment._skill_users = skill_users
        return assignment

    def add_user(self, user: User, skills: Iterable[Skill] = ()) -> None:
        """Register ``user`` with the given skills (merging with existing ones)."""
        self._user_skills.setdefault(user, set())
        for skill in skills:
            self.add_skill_to_user(user, skill)

    def add_skill_to_user(self, user: User, skill: Skill) -> None:
        """Give ``skill`` to ``user`` (registering both if needed)."""
        self._user_skills.setdefault(user, set()).add(skill)
        self._skill_users.setdefault(skill, set()).add(user)

    def remove_skill_from_user(self, user: User, skill: Skill) -> None:
        """Remove ``skill`` from ``user`` (no-op if the user lacks the skill)."""
        if user in self._user_skills:
            self._user_skills[user].discard(skill)
        if skill in self._skill_users:
            self._skill_users[skill].discard(user)
            if not self._skill_users[skill]:
                del self._skill_users[skill]

    # ------------------------------------------------------------------ query

    def __contains__(self, user: User) -> bool:
        return user in self._user_skills

    def __len__(self) -> int:
        return len(self._user_skills)

    def __iter__(self) -> Iterator[User]:
        return iter(self._user_skills)

    def users(self) -> List[User]:
        """All registered users (including users with no skills)."""
        return list(self._user_skills)

    def skills(self) -> List[Skill]:
        """The skill universe: every skill possessed by at least one user."""
        return list(self._skill_users)

    def number_of_skills(self) -> int:
        """Size of the skill universe."""
        return len(self._skill_users)

    def skills_of(self, user: User) -> FrozenSet[Skill]:
        """The skill set of ``user`` (empty frozenset for unknown users)."""
        return frozenset(self._user_skills.get(user, frozenset()))

    def users_with(self, skill: Skill) -> FrozenSet[User]:
        """The set of users possessing ``skill``; raises for unknown skills."""
        try:
            return frozenset(self._skill_users[skill])
        except KeyError:
            raise UnknownSkillError(skill) from None

    def has_skill(self, user: User, skill: Skill) -> bool:
        """True iff ``user`` possesses ``skill``."""
        return skill in self._user_skills.get(user, ())

    def skill_frequency(self, skill: Skill) -> int:
        """Number of users possessing ``skill`` (0 for unknown skills)."""
        return len(self._skill_users.get(skill, ()))

    def covers(self, users: Iterable[User], skills: Iterable[Skill]) -> bool:
        """True iff the union of the users' skill sets contains all ``skills``."""
        required = set(skills)
        for user in users:
            required -= self._user_skills.get(user, set())
            if not required:
                return True
        return not required

    def covered_skills(self, users: Iterable[User]) -> Set[Skill]:
        """Union of skill sets of ``users``."""
        covered: Set[Skill] = set()
        for user in users:
            covered |= self._user_skills.get(user, set())
        return covered

    def missing_skills(self, users: Iterable[User], skills: Iterable[Skill]) -> Set[Skill]:
        """Subset of ``skills`` not covered by ``users``."""
        return set(skills) - self.covered_skills(users)

    def restricted_to(self, users: Iterable[User]) -> "SkillAssignment":
        """Return a copy containing only the given users."""
        subset = SkillAssignment()
        for user in users:
            subset.add_user(user, self._user_skills.get(user, set()))
        return subset

    def as_dict(self) -> Dict[User, Set[Skill]]:
        """Return a plain ``{user: set_of_skills}`` dictionary copy."""
        return {user: set(skills) for user, skills in self._user_skills.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SkillAssignment):
            return NotImplemented
        return self._user_skills == other._user_skills

    def __repr__(self) -> str:
        return (
            f"SkillAssignment(users={len(self._user_skills)}, "
            f"skills={len(self._skill_users)})"
        )
