"""Skills substrate: skill assignments, tasks, generators, statistics and I/O."""

from repro.skills.assignment import SkillAssignment
from repro.skills.task import Task
from repro.skills.generators import (
    zipf_skill_frequencies,
    assign_skills_zipf,
    assign_skills_uniform,
)
from repro.skills.stats import SkillStatistics, skill_statistics
from repro.skills.io import (
    assignment_to_json_dict,
    assignment_from_json_dict,
    read_assignment,
    write_assignment,
)

__all__ = [
    "SkillAssignment",
    "Task",
    "zipf_skill_frequencies",
    "assign_skills_zipf",
    "assign_skills_uniform",
    "SkillStatistics",
    "skill_statistics",
    "assignment_to_json_dict",
    "assignment_from_json_dict",
    "read_assignment",
    "write_assignment",
]
