"""Serialisation of skill assignments (JSON and simple text formats)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.exceptions import DatasetError
from repro.skills.assignment import SkillAssignment

PathLike = Union[str, Path]


def assignment_to_json_dict(assignment: SkillAssignment) -> Dict[str, List[object]]:
    """Return a JSON-serialisable ``{user: [skills...]}`` dictionary.

    User keys are converted to strings (JSON object keys must be strings);
    :func:`assignment_from_json_dict` converts numeric-looking keys back to
    integers so integer-noded datasets round-trip.
    """
    return {
        str(user): sorted(str(skill) for skill in assignment.skills_of(user))
        for user in assignment.users()
    }


def assignment_from_json_dict(data: Dict[str, Iterable[object]]) -> SkillAssignment:
    """Rebuild a :class:`SkillAssignment` from :func:`assignment_to_json_dict` output."""
    assignment = SkillAssignment()
    for raw_user, skills in data.items():
        user: object = raw_user
        if isinstance(raw_user, str) and raw_user.lstrip("-").isdigit():
            user = int(raw_user)
        assignment.add_user(user, skills)
    return assignment


def write_assignment(assignment: SkillAssignment, path: PathLike) -> None:
    """Write ``assignment`` to a JSON file."""
    file_path = Path(path)
    file_path.parent.mkdir(parents=True, exist_ok=True)
    with file_path.open("w", encoding="utf-8") as handle:
        json.dump(assignment_to_json_dict(assignment), handle)


def read_assignment(path: PathLike) -> SkillAssignment:
    """Load an assignment previously written with :func:`write_assignment`."""
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"skill assignment file not found: {file_path}")
    with file_path.open("r", encoding="utf-8") as handle:
        return assignment_from_json_dict(json.load(handle))


def read_user_skill_pairs(path: PathLike, separator: str = None) -> SkillAssignment:
    """Read a text file of ``user skill`` pairs, one per line.

    This is the format in which real datasets (e.g. the RED product-category
    data the paper joins with Epinions) are typically distributed.  Lines
    starting with ``#`` are ignored.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"user-skill file not found: {file_path}")
    assignment = SkillAssignment()
    with file_path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(separator)
            if len(parts) < 2:
                raise DatasetError(
                    f"line {line_number}: expected 'user skill', got {raw_line!r}"
                )
            user: object = parts[0]
            if isinstance(user, str) and user.lstrip("-").isdigit():
                user = int(user)
            assignment.add_user(user, [" ".join(parts[1:])])
    return assignment
