"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors related to signed graphs."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class InvalidSignError(GraphError, ValueError):
    """Raised when an edge sign is neither ``+1`` nor ``-1``."""

    def __init__(self, sign: object) -> None:
        super().__init__(f"edge sign must be +1 or -1, got {sign!r}")
        self.sign = sign


class DisconnectedGraphError(GraphError):
    """Raised when an algorithm requires a connected graph but the input is not."""


class SkillError(ReproError):
    """Base class for errors related to skills and skill assignments."""


class UnknownSkillError(SkillError, KeyError):
    """Raised when a task or query references a skill absent from the universe."""

    def __init__(self, skill: object) -> None:
        super().__init__(f"skill {skill!r} is not in the skill universe")
        self.skill = skill


class CompatibilityError(ReproError):
    """Base class for errors raised by compatibility relations."""


class RelationNotComputedError(CompatibilityError, RuntimeError):
    """Raised when a relation requires pre-computation that has not happened yet."""


class UnknownRelationError(CompatibilityError, KeyError):
    """Raised when looking up a compatibility relation by an unknown name."""

    def __init__(self, name: object) -> None:
        super().__init__(
            f"unknown compatibility relation {name!r}; see repro.compatibility.RELATION_NAMES"
        )
        self.name = name


class TeamFormationError(ReproError):
    """Base class for errors raised during team formation."""


class InfeasibleTaskError(TeamFormationError):
    """Raised when a task cannot be covered at all (some skill has no owner)."""

    def __init__(self, missing_skills: object) -> None:
        super().__init__(f"no user possesses the skill(s): {sorted(missing_skills)!r}")
        self.missing_skills = set(missing_skills)


class NoCompatibleTeamError(TeamFormationError):
    """Raised (optionally) when no compatible team covering the task was found."""


class DatasetError(ReproError):
    """Base class for dataset loading / generation errors."""


class UnknownDatasetError(DatasetError, KeyError):
    """Raised when looking up a dataset by an unknown name."""

    def __init__(self, name: object) -> None:
        super().__init__(f"unknown dataset {name!r}; see repro.datasets.available()")
        self.name = name


class ExperimentError(ReproError):
    """Base class for experiment-harness errors."""
